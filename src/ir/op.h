// Core IR data structures: a small MLIR-like SSA IR with nested regions.
//
// Design notes (see DESIGN.md §4):
//  - One concrete Op class parameterized by OpKind; structured-control-flow
//    ops (scf.for/if/while/parallel) carry regions, each region holds a
//    single block (control flow is fully structured; there are no branch
//    ops at the IR level).
//  - Values are results of ops or block arguments; use-def chains are
//    maintained eagerly by setOperand/appendOperand/erase.
//  - Memory & ownership (§4, rewritten for the arena): every node of a
//    module — Op, ValueImpl, Block, Region, and all of their dynamic
//    payloads (operand/use/arg/block/attr lists) — is bump-allocated from
//    the module's ir::IRArena (ir/arena.h). The module op created by
//    ModuleOp::create() is the arena *root*: Op::destroy on the root (what
//    ~OwnedModule runs) releases the arena's slabs in O(1) with no
//    recursive delete walk, after running the short destructor list for
//    the few non-trivial attribute payloads (string/int-vector values).
//    Nodes themselves are trivially destructible, enforced below.
//  - The erase-is-unlink invariant: destroying anything smaller than the
//    whole module (Op::erase, Op::destroy on a non-root op, Region::clear,
//    Block::eraseArg) detaches it — unlinks from the parent list and drops
//    every use-def edge from the erased subtree — but never frees; the
//    memory is reclaimed when the module dies. Consequently pointers into
//    erased IR stay dereferenceable (not that code should), arena usage
//    grows monotonically per module, and nothing may move ops BETWEEN
//    modules: clone (cloneOpInto) or reparse (parseModuleInto) into the
//    destination module's arena instead — the cache-replay splice paths in
//    PassManager do exactly that.
#pragma once

#include "ir/arena.h"
#include "ir/type.h"
#include "support/diagnostics.h"

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace paralift::ir {

class Op;
class Block;
class Region;

//===----------------------------------------------------------------------===//
// OpKind
//===----------------------------------------------------------------------===//

enum class OpKind : uint16_t {
  // Structure
  Module,   ///< top-level container; region holds Func ops
  Func,     ///< attr "sym_name"; region args = parameters
  Return,   ///< operands = returned values
  Call,     ///< attr "callee"; operands = args; results = callee results
  Yield,    ///< terminator of scf region bodies
  Condition,///< terminator of scf.while "before" region: (cond, forwarded...)

  // Constants
  ConstInt,   ///< attr "value" (int64); result type i1/i32/i64/index
  ConstFloat, ///< attr "value" (double); result type f32/f64

  // Integer arithmetic (also used for index)
  AddI, SubI, MulI, DivSI, RemSI, AndI, OrI, XOrI, ShLI, ShRSI,
  MinSI, MaxSI,
  CmpI, ///< attr "pred" (CmpIPred); result i1

  // Floating-point arithmetic
  AddF, SubF, MulF, DivF, RemF, NegF, MinF, MaxF,
  CmpF, ///< attr "pred" (CmpFPred); result i1

  Select, ///< (i1, a, b) -> a or b

  // Casts
  SIToFP, FPToSI, IndexCast, ExtSI, TruncI, FPExt, FPTrunc,

  // Math (float)
  Sqrt, Exp, Log, Pow, Abs, Sin, Cos, Tanh, Floor, Ceil,

  // MemRef
  Alloca,  ///< stack allocation; operands = dynamic extents
  Alloc,   ///< heap allocation; operands = dynamic extents
  Dealloc, ///< frees an Alloc
  Load,    ///< (memref, indices...) -> elem
  Store,   ///< (value, memref, indices...)
  Dim,     ///< (memref) attr "index" -> index extent of one dimension
  SubView, ///< (memref, leading indices...) -> memref of lower rank

  // Structured control flow
  ScfFor,      ///< (lb, ub, step, inits...); body args = (iv, carried...)
  ScfIf,       ///< (cond); region0 = then, region1 = else
  ScfWhile,    ///< (inits...); region0 = before, region1 = after
  ScfParallel, ///< attr "dims"; operands = lbs+ubs+steps; body args = ivs

  // GPU-style synchronization (polygeist.barrier)
  Barrier,

  // OpenMP-like CPU parallel dialect
  OmpParallel, ///< region executed by every thread of a team
  OmpWsLoop,   ///< worksharing loop; layout identical to ScfParallel
  OmpBarrier,  ///< team-wide barrier

  kNumOpKinds
};

const char *opKindName(OpKind k);

enum class CmpIPred : int64_t { eq, ne, slt, sle, sgt, sge };
enum class CmpFPred : int64_t { oeq, one, olt, ole, ogt, oge };

//===----------------------------------------------------------------------===//
// Attributes
//===----------------------------------------------------------------------===//

using AttrValue =
    std::variant<bool, int64_t, double, std::string, std::vector<int64_t>>;

/// A small ordered name->value attribute map. Ops carry at most a handful
/// of attributes, so linear lookup is appropriate.
///
/// Names are interned (internAttrName) — they come from a fixed small
/// vocabulary, so storing `const char *` keys means set/lookup never
/// allocates on the hot parse path and equal names compare by pointer.
/// Entries live in the owning op's arena; bool/int/double values are
/// trivially destructible, and the first string/int-vector value lazily
/// registers this map on the arena's destructor list.
class AttrMap {
public:
  explicit AttrMap(IRArena *arena) : entries_(arena) {}

  /// Deep-copies `o`'s entries into this map's arena (cloneOp).
  AttrMap &operator=(const AttrMap &o);

  void set(const std::string &name, AttrValue v) {
    setInterned(internAttrName(name), std::move(v));
  }
  /// `name` must be a pointer returned by internAttrName.
  void setInterned(const char *name, AttrValue v);
  void erase(const std::string &name);
  bool has(const std::string &name) const;

  bool getBool(const std::string &name, bool dflt = false) const;
  int64_t getInt(const std::string &name, int64_t dflt = 0) const;
  double getFloat(const std::string &name, double dflt = 0) const;
  std::string getString(const std::string &name) const;
  std::vector<int64_t> getIntVec(const std::string &name) const;

  using Entry = std::pair<const char *, AttrValue>;
  const ArenaVector<Entry> &entries() const { return entries_; }
  bool operator==(const AttrMap &o) const {
    // Interned keys compare by pointer.
    return entries_ == o.entries_;
  }

private:
  /// True if `v` holds a payload that needs destruction at arena
  /// teardown.
  static bool needsDtor(const AttrValue &v) {
    return std::holds_alternative<std::string>(v) ||
           std::holds_alternative<std::vector<int64_t>>(v);
  }
  void registerCleanup();

  ArenaVector<Entry> entries_;
  bool registered_ = false;
};

//===----------------------------------------------------------------------===//
// Value
//===----------------------------------------------------------------------===//

/// Backing storage for one SSA value. Arena-allocated; logically owned by
/// the defining Op (results) or Block (arguments).
class ValueImpl {
public:
  explicit ValueImpl(IRArena *arena) : uses(arena) {}

  Type type;
  Op *defOp = nullptr;
  Block *defBlock = nullptr;
  unsigned index = 0;
  /// (user op, operand index) pairs; order unspecified.
  ArenaVector<std::pair<Op *, unsigned>> uses;
};

/// A lightweight handle to an SSA value.
class Value {
public:
  Value() = default;
  explicit Value(ValueImpl *impl) : impl_(impl) {}

  explicit operator bool() const { return impl_ != nullptr; }
  bool operator==(const Value &o) const { return impl_ == o.impl_; }
  bool operator!=(const Value &o) const { return impl_ != o.impl_; }

  Type type() const { return impl_->type; }
  void setType(Type t) { impl_->type = t; }

  /// The op defining this value, or nullptr for block arguments.
  Op *definingOp() const { return impl_->defOp; }
  /// The block owning this value if it is a block argument, else nullptr.
  Block *definingBlock() const { return impl_->defBlock; }
  unsigned index() const { return impl_->index; }

  bool isBlockArg() const { return impl_->defBlock != nullptr; }

  bool hasUses() const { return !impl_->uses.empty(); }
  size_t numUses() const { return impl_->uses.size(); }
  const ArenaVector<std::pair<Op *, unsigned>> &uses() const {
    return impl_->uses;
  }

  /// Redirects every use of this value to `other`.
  void replaceAllUsesWith(Value other);

  ValueImpl *impl() const { return impl_; }

private:
  ValueImpl *impl_ = nullptr;
};

struct ValueHash {
  size_t operator()(const Value &v) const {
    return std::hash<void *>()(v.impl());
  }
};

//===----------------------------------------------------------------------===//
// Block
//===----------------------------------------------------------------------===//

/// A straight-line sequence of ops plus block arguments. Blocks in this IR
/// always belong to a region of a structured op, and regions hold exactly
/// one block (enforced by the verifier for scf ops).
class Block {
public:
  explicit Block(IRArena *arena) : arena_(arena), args_(arena) {}
  Block(const Block &) = delete;
  Block &operator=(const Block &) = delete;

  Region *parent() const { return parent_; }
  Op *parentOp() const;
  IRArena *arena() const { return arena_; }

  // Arguments ---------------------------------------------------------------
  Value addArg(Type t);
  unsigned numArgs() const { return static_cast<unsigned>(args_.size()); }
  Value arg(unsigned i) const { return Value(args_[i]); }
  /// Erases argument i; it must be unused. (Unlink-without-free: the
  /// ValueImpl's memory stays in the arena.)
  void eraseArg(unsigned i);

  // Op list -----------------------------------------------------------------
  bool empty() const { return first_ == nullptr; }
  Op *front() const { return first_; }
  Op *back() const { return last_; }
  /// The trailing terminator (Yield/Return/Condition), or nullptr.
  Op *terminator() const;

  void push_back(Op *op);
  void push_front(Op *op);
  /// Inserts `op` before `anchor`; a null anchor appends.
  void insertBefore(Op *anchor, Op *op);
  /// Detaches `op` from this block without destroying it.
  void unlink(Op *op);

  size_t size() const;

  // Iteration (supports erasing the current op while iterating via the
  // idiom: for (Op *op = b.front(), *n; op; op = n) { n = op->next(); ... }).
  class iterator {
  public:
    explicit iterator(Op *op) : op_(op) {}
    Op *operator*() const { return op_; }
    iterator &operator++();
    bool operator!=(const iterator &o) const { return op_ != o.op_; }

  private:
    Op *op_;
  };
  iterator begin() const { return iterator(first_); }
  iterator end() const { return iterator(nullptr); }

private:
  friend class Region;
  friend class Op;
  Region *parent_ = nullptr;
  IRArena *arena_ = nullptr;
  ArenaVector<ValueImpl *> args_;
  Op *first_ = nullptr;
  Op *last_ = nullptr;
};

//===----------------------------------------------------------------------===//
// Region
//===----------------------------------------------------------------------===//

class Region {
public:
  explicit Region(IRArena *arena) : arena_(arena), blocks_(arena) {}
  Region(const Region &) = delete;
  Region &operator=(const Region &) = delete;

  Op *parentOp() const { return parentOp_; }

  bool empty() const { return blocks_.empty(); }
  Block &front() { return *blocks_.front(); }
  const Block &front() const { return *blocks_.front(); }
  Block &emplaceBlock();
  size_t numBlocks() const { return blocks_.size(); }
  /// Detaches all blocks (and their ops): use-def edges out of the
  /// dropped subtree are removed, the memory stays in the arena.
  void clear();

  const ArenaVector<Block *> &blocks() const { return blocks_; }

  /// Moves all blocks of `other` into this (appending). Used by inlining.
  /// Both regions must live in the same arena.
  void takeBlocks(Region &other);

private:
  friend class Op;
  Op *parentOp_ = nullptr;
  IRArena *arena_ = nullptr;
  ArenaVector<Block *> blocks_;
};

//===----------------------------------------------------------------------===//
// Op
//===----------------------------------------------------------------------===//

class Op {
public:
  /// Creates a detached op in `arena` (the owning module's — see
  /// Op::arena() / Builder::createOp, which picks the insertion block's).
  /// Ownership transfers to the block it is eventually inserted into;
  /// a detached op that is abandoned should be passed to Op::destroy() so
  /// its operand uses are detached.
  static Op *create(IRArena &arena, OpKind kind, SourceLoc loc,
                    const Type *resultTypes, size_t numResults,
                    const Value *operands, size_t numOperands,
                    unsigned numRegions);
  static Op *create(IRArena &arena, OpKind kind, SourceLoc loc,
                    const std::vector<Type> &resultTypes,
                    const std::vector<Value> &operands, unsigned numRegions) {
    return create(arena, kind, loc, resultTypes.data(), resultTypes.size(),
                  operands.data(), operands.size(), numRegions);
  }
  /// Detaches a detached op: recursively drops every use-def edge out of
  /// the subtree. The memory stays in the arena — except for the arena
  /// root (the module op of ModuleOp::create), where this instead
  /// releases the whole arena in O(1).
  static void destroy(Op *op);

  OpKind kind() const { return kind_; }
  SourceLoc loc() const { return loc_; }
  void setLoc(SourceLoc l) { loc_ = l; }

  /// The arena every node of this op's module lives in.
  IRArena &arena() const { return *arena_; }

  Block *parent() const { return parent_; }
  /// The op owning the region that contains this op's parent block.
  Op *parentOp() const;
  Op *prev() const { return prev_; }
  Op *next() const { return next_; }

  /// True if this op is `other` or transitively contains it.
  bool isAncestorOf(const Op *other) const;

  // Operands ----------------------------------------------------------------
  unsigned numOperands() const {
    return static_cast<unsigned>(operands_.size());
  }
  Value operand(unsigned i) const { return operands_[i]; }
  const ArenaVector<Value> &operands() const { return operands_; }
  void setOperand(unsigned i, Value v);
  void appendOperand(Value v);
  void insertOperand(unsigned i, Value v);
  void eraseOperand(unsigned i);
  void dropAllOperands();
  /// Replaces every use of `from` among this op's operands with `to`.
  void replaceUsesOfWith(Value from, Value to);

  // Results -----------------------------------------------------------------
  unsigned numResults() const { return numResults_; }
  Value result(unsigned i = 0) const { return Value(&results_[i]); }
  bool hasAnyUse() const;

  // Regions -----------------------------------------------------------------
  unsigned numRegions() const { return numRegions_; }
  Region &region(unsigned i) { return regions_[i]; }
  const Region &region(unsigned i) const { return regions_[i]; }

  // Attributes ----------------------------------------------------------------
  AttrMap &attrs() { return attrs_; }
  const AttrMap &attrs() const { return attrs_; }

  // Mutation ------------------------------------------------------------------
  /// Unlinks from the parent block and detaches use-def edges; results
  /// must be unused. Memory stays in the arena (erase-is-unlink).
  void erase();
  void moveBefore(Op *other);
  void moveAfter(Op *other);
  /// Detach from parent block without destroying.
  void removeFromParent();

  /// Walks this op and all nested ops pre-order. The callback may erase
  /// the op it is given (but not yet-unvisited ops).
  void walk(const std::function<void(Op *)> &fn);
  /// Post-order walk (children before parents).
  void walkPostOrder(const std::function<void(Op *)> &fn);

private:
  friend class Block;
  Op(IRArena *arena, OpKind kind, SourceLoc loc)
      : kind_(kind), loc_(loc), arena_(arena), operands_(arena),
        attrs_(arena) {}

  OpKind kind_;
  uint16_t numResults_ = 0;
  uint16_t numRegions_ = 0;
  SourceLoc loc_;
  IRArena *arena_;
  Block *parent_ = nullptr;
  Op *prev_ = nullptr;
  Op *next_ = nullptr;
  ArenaVector<Value> operands_;
  ValueImpl *results_ = nullptr; ///< contiguous array, fixed at create
  Region *regions_ = nullptr;    ///< contiguous array, fixed at create
  AttrMap attrs_;
};

// The O(1)-teardown contract: arena nodes must never need destructors
// (string/int-vector attr values are the registered exception).
static_assert(std::is_trivially_destructible_v<ValueImpl>,
              "ValueImpl must stay trivially destructible");
static_assert(std::is_trivially_destructible_v<Block>,
              "Block must stay trivially destructible");
static_assert(std::is_trivially_destructible_v<Region>,
              "Region must stay trivially destructible");
static_assert(std::is_trivially_destructible_v<Op>,
              "Op must stay trivially destructible");

//===----------------------------------------------------------------------===//
// Kind predicates / traits
//===----------------------------------------------------------------------===//

bool isTerminator(OpKind k);
/// Pure = no memory effects, no regions, safe to CSE/DCE.
bool isPure(OpKind k);
/// Ops whose regions represent loops (bodies may execute 0..N times).
bool isLoopLike(OpKind k);
/// scf.parallel / omp.wsloop share the lbs/ubs/steps + "dims" layout.
bool hasParallelLayout(OpKind k);

} // namespace paralift::ir
