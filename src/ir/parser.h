// Textual IR parser: the inverse of printer.cpp. Accepts the exact
// format printOp emits (round-trip guarantee: parse(print(m)) prints
// identically), which enables mlir-opt-style pass pipelines over IR files
// (tools/paralift-opt) and textual transform test cases.
//
// Grammar (one op per line; regions nest with braces):
//   op        ::= (results '=')? opname operands? attrs? (':' types)? region*
//   results   ::= ssa-id (',' ssa-id)*
//   operands  ::= '(' ssa-id (',' ssa-id)* ')'
//   attrs     ::= '{' ident '=' attr-value (',' ident '=' attr-value)* '}'
//   region    ::= '{' block-args? op* '}' | '{}'
//   block-args::= '[' ssa-id ':' type (',' ssa-id ':' type)* ']' ':'
//   ssa-id    ::= '%' integer
// Types are the scalar names (i1/i32/i64/f32/f64/index/none) or
// memref<DIMxDIMx...xELEM> with '?' for dynamic dimensions.
#pragma once

#include "ir/ophelpers.h"
#include "support/diagnostics.h"

#include <optional>
#include <string>

namespace paralift::ir {

/// Parses a textual module (as produced by printOp on a ModuleOp).
/// On failure reports through `diag` and returns nullopt. The returned
/// module has been structurally populated but not verified; callers that
/// ingest untrusted text should run verify() next.
std::optional<OwnedModule> parseModule(const std::string &text,
                                       DiagnosticEngine &diag);

/// Parses a textual module, allocating every node from `arena`, and
/// returns the *detached* module op (not the arena root) — or nullptr on
/// error, reported through `diag`. This is how cache-replay splices
/// materialize IR inside an existing module: parse into its arena, move
/// the funcs over, then Op::destroy the returned top op (which only
/// detaches it; the memory belongs to the arena).
Op *parseModuleInto(IRArena &arena, const std::string &text,
                    DiagnosticEngine &diag);

/// Parses a type spelling, e.g. "f32" or "memref<4x?xf32>". Returns
/// Type() (None kind) on failure.
Type parseType(const std::string &text);

} // namespace paralift::ir
