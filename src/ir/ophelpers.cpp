#include "ir/ophelpers.h"

#include <unordered_map>

namespace paralift::ir {

//===----------------------------------------------------------------------===//
// ModuleOp / FuncOp / CallOp
//===----------------------------------------------------------------------===//

ModuleOp ModuleOp::create() {
  // The module op is the root of a fresh arena: destroying it (via
  // ~OwnedModule) releases every node of the module in O(1).
  auto *arena = new IRArena();
  Op *op = Op::create(*arena, OpKind::Module, SourceLoc(), {}, {}, 1);
  arena->setRoot(op);
  op->region(0).emplaceBlock();
  return ModuleOp(op);
}

Op *ModuleOp::lookupFunc(const std::string &name) const {
  for (Op *fn : body())
    if (fn->kind() == OpKind::Func &&
        fn->attrs().getString("sym_name") == name)
      return fn;
  return nullptr;
}

FuncOp FuncOp::create(ModuleOp module, const std::string &name,
                      const std::vector<Type> &argTypes,
                      const std::vector<Type> &resultTypes) {
  Op *op = Op::create(module.op->arena(), OpKind::Func, SourceLoc(), {}, {}, 1);
  op->attrs().set("sym_name", name);
  std::vector<int64_t> resKinds;
  // Result types are encoded as attributes: scalar kinds only (functions
  // never return memrefs in this IR; buffers are out-parameters).
  for (const Type &t : resultTypes) {
    assert(!t.isMemRef() && "function results must be scalar");
    resKinds.push_back(static_cast<int64_t>(t.kind()));
  }
  op->attrs().set("res_types", resKinds);
  Block &entry = op->region(0).emplaceBlock();
  for (const Type &t : argTypes)
    entry.addArg(t);
  module.body().push_back(op);
  return FuncOp(op);
}

std::vector<Type> FuncOp::resultTypes() const {
  std::vector<Type> out;
  for (int64_t k : op->attrs().getIntVec("res_types"))
    out.push_back(Type(static_cast<TypeKind>(k)));
  return out;
}

CallOp CallOp::create(Builder &b, const std::string &callee,
                      const std::vector<Value> &args,
                      const std::vector<Type> &resultTypes) {
  Op *op = b.createOp(OpKind::Call, resultTypes, args);
  op->attrs().set("callee", callee);
  return CallOp(op);
}

//===----------------------------------------------------------------------===//
// Structured control flow
//===----------------------------------------------------------------------===//

ForOp ForOp::create(Builder &b, Value lb, Value ub, Value step,
                    const std::vector<Value> &inits) {
  assert(lb.type().isIndex() && ub.type().isIndex() && step.type().isIndex());
  std::vector<Value> operands = {lb, ub, step};
  operands.insert(operands.end(), inits.begin(), inits.end());
  std::vector<Type> resultTypes;
  for (Value v : inits)
    resultTypes.push_back(v.type());
  Op *op = b.createOp(OpKind::ScfFor, resultTypes, operands, 1);
  Block &body = op->region(0).emplaceBlock();
  body.addArg(Type::index());
  for (Value v : inits)
    body.addArg(v.type());
  return ForOp(op);
}

IfOp IfOp::create(Builder &b, Value cond, const std::vector<Type> &resultTypes,
                  bool withElse) {
  assert(cond.type() == Type::i1());
  Op *op = b.createOp(OpKind::ScfIf, resultTypes, {cond}, 2);
  op->region(0).emplaceBlock();
  if (withElse || !resultTypes.empty())
    op->region(1).emplaceBlock();
  return IfOp(op);
}

Block &IfOp::getOrCreateElse() {
  if (!hasElse()) {
    Block &blk = op->region(1).emplaceBlock();
    Builder eb(&blk);
    eb.yield({});
    return blk;
  }
  return elseBlock();
}

WhileOp WhileOp::create(Builder &b, const std::vector<Value> &inits,
                        const std::vector<Type> &afterTypes) {
  std::vector<Type> resultTypes = afterTypes;
  Op *op = b.createOp(OpKind::ScfWhile, resultTypes, inits, 2);
  Block &before = op->region(0).emplaceBlock();
  for (Value v : inits)
    before.addArg(v.type());
  Block &after = op->region(1).emplaceBlock();
  for (const Type &t : afterTypes)
    after.addArg(t);
  return WhileOp(op);
}

ParallelOp ParallelOp::create(Builder &b, OpKind kind,
                              const std::vector<Value> &lbs,
                              const std::vector<Value> &ubs,
                              const std::vector<Value> &steps) {
  assert(hasParallelLayout(kind));
  assert(lbs.size() == ubs.size() && ubs.size() == steps.size());
  std::vector<Value> operands;
  operands.insert(operands.end(), lbs.begin(), lbs.end());
  operands.insert(operands.end(), ubs.begin(), ubs.end());
  operands.insert(operands.end(), steps.begin(), steps.end());
  Op *op = b.createOp(kind, {}, operands, 1);
  op->attrs().set("dims", static_cast<int64_t>(lbs.size()));
  Block &body = op->region(0).emplaceBlock();
  for (size_t i = 0; i < lbs.size(); ++i)
    body.addArg(Type::index());
  return ParallelOp(op);
}

OmpParallelOp OmpParallelOp::create(Builder &b) {
  Op *op = b.createOp(OpKind::OmpParallel, {}, {}, 1);
  op->region(0).emplaceBlock();
  return OmpParallelOp(op);
}

//===----------------------------------------------------------------------===//
// Utilities
//===----------------------------------------------------------------------===//

std::optional<int64_t> getConstInt(Value v) {
  if (Op *def = v.definingOp())
    if (def->kind() == OpKind::ConstInt)
      return def->attrs().getInt("value");
  return std::nullopt;
}

std::optional<double> getConstFloat(Value v) {
  if (Op *def = v.definingOp())
    if (def->kind() == OpKind::ConstFloat)
      return def->attrs().getFloat("value");
  return std::nullopt;
}

static Value mapValue(Value v, std::unordered_map<ValueImpl *, Value> &map) {
  auto it = map.find(v.impl());
  return it == map.end() ? v : it->second;
}

OwnedModule cloneModule(ModuleOp module) {
  // The clone gets its own arena (a fresh OwnedModule); funcs are cloned
  // into it one by one. Ops never migrate between arenas.
  OwnedModule dst;
  std::unordered_map<ValueImpl *, Value> map;
  // Seeded above the typical per-module value count: the incremental
  // rehashes otherwise dominate the map's cost on kernel-sized funcs.
  map.reserve(1024);
  IRArena &arena = dst.arena();
  Block &body = dst.get().body();
  for (Op *fn : module.body())
    body.push_back(cloneOpInto(arena, fn, map));
  dst.op()->attrs() = module.op->attrs();
  return dst;
}

namespace {

/// Scratch buffers shared across one clone's whole recursion: both are
/// fully consumed by Op::create before any nested op is cloned, so inner
/// frames may freely clobber them — one pair of heap buffers per clone
/// instead of two per op.
struct CloneScratch {
  std::vector<Type> resultTypes;
  std::vector<Value> operands;
};

Op *cloneOpRec(IRArena &arena, Op *src,
               std::unordered_map<ValueImpl *, Value> &map,
               CloneScratch &scratch) {
  scratch.resultTypes.clear();
  for (unsigned i = 0; i < src->numResults(); ++i)
    scratch.resultTypes.push_back(src->result(i).type());
  scratch.operands.clear();
  for (unsigned i = 0; i < src->numOperands(); ++i)
    scratch.operands.push_back(mapValue(src->operand(i), map));
  Op *clone = Op::create(arena, src->kind(), src->loc(), scratch.resultTypes,
                         scratch.operands, src->numRegions());
  clone->attrs() = src->attrs();
  for (unsigned i = 0; i < src->numResults(); ++i)
    map[src->result(i).impl()] = clone->result(i);
  for (unsigned r = 0; r < src->numRegions(); ++r) {
    for (Block *srcBlock : src->region(r).blocks()) {
      Block &dstBlock = clone->region(r).emplaceBlock();
      for (unsigned a = 0; a < srcBlock->numArgs(); ++a) {
        Value newArg = dstBlock.addArg(srcBlock->arg(a).type());
        map[srcBlock->arg(a).impl()] = newArg;
      }
      for (Op *inner : *srcBlock)
        dstBlock.push_back(cloneOpRec(arena, inner, map, scratch));
    }
  }
  return clone;
}

} // namespace

Op *cloneOpInto(IRArena &arena, Op *src,
                std::unordered_map<ValueImpl *, Value> &map) {
  CloneScratch scratch;
  return cloneOpRec(arena, src, map, scratch);
}

Op *cloneOp(Op *src, std::unordered_map<ValueImpl *, Value> &map) {
  return cloneOpInto(src->arena(), src, map);
}

bool isDefinedOutside(Value v, Op *op) {
  if (Op *def = v.definingOp())
    return !op->isAncestorOf(def);
  Op *owner = v.definingBlock()->parentOp();
  // A block argument is "outside" op unless its owning region op is op
  // itself or nested within op.
  return !(owner && op->isAncestorOf(owner));
}

Op *getEnclosing(Op *op, OpKind kind) {
  for (Op *cur = op->parentOp(); cur; cur = cur->parentOp())
    if (cur->kind() == kind)
      return cur;
  return nullptr;
}

Op *getEnclosingThreadParallel(Op *op) {
  for (Op *cur = op->parentOp(); cur; cur = cur->parentOp())
    if (cur->kind() == OpKind::ScfParallel &&
        cur->attrs().getBool("gpu.block"))
      return cur;
  return nullptr;
}

} // namespace paralift::ir
