// Textual rendering of the IR, MLIR-flavored. Deterministic SSA numbering
// per top-level op so tests can assert on printed output.
#pragma once

#include "ir/op.h"

#include <string>

namespace paralift::ir {

/// Prints `op` (and nested regions) to a string.
std::string printOp(Op *op);

/// Prints a single op without regions (one line), used in diagnostics.
std::string printOpSignature(Op *op);

} // namespace paralift::ir
