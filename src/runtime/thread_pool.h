// CPU execution runtime: a persistent worker pool with OpenMP-like teams.
//
// A "team" executes one parallel region: the calling thread becomes team
// member 0 and pool workers join as members 1..n-1. Teams own a
// std::barrier used to implement omp.barrier. Nested parallel regions
// follow a configurable policy: Serialize (team of one — the paper's
// inner-serialization mode) or Spawn (fresh std::threads, reproducing the
// real cost of OpenMP nested parallelism that Fig. 12 measures).
#pragma once

#include <barrier>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace paralift::runtime {

/// Execution context of one parallel region.
class Team {
public:
  explicit Team(unsigned size) : size_(size), barrier_(size) {}

  unsigned size() const { return size_; }
  /// Blocks until all team members arrive (omp.barrier semantics).
  void barrier() { barrier_.arrive_and_wait(); }

private:
  unsigned size_;
  std::barrier<> barrier_;
};

enum class NestedPolicy { Serialize, Spawn };

/// Work item run by each team member: fn(tid, team).
using TeamFn = std::function<void(unsigned, Team &)>;

class ThreadPool {
public:
  /// Creates `maxThreads - 1` persistent workers (the caller is the
  /// remaining member of every top-level team).
  explicit ThreadPool(unsigned maxThreads);
  ~ThreadPool();
  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Team size used for subsequent top-level parallel regions. Clamped to
  /// the pool capacity.
  void setNumThreads(unsigned n);
  unsigned numThreads() const { return teamSize_; }
  unsigned capacity() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  void setNestedPolicy(NestedPolicy p) { nested_ = p; }
  NestedPolicy nestedPolicy() const { return nested_; }

  /// Executes `fn` on a team. Called from the application thread this uses
  /// the persistent workers; called from inside a team (nested region), it
  /// applies the nested policy.
  void parallel(const TeamFn &fn);

  /// True when invoked from a pool worker or a spawned nested thread.
  static bool insideParallel();

private:
  void workerLoop(unsigned workerIdx);
  void runNested(const TeamFn &fn);

  struct Job {
    const TeamFn *fn = nullptr;
    Team *team = nullptr;
    unsigned participants = 0; // workers used by this job
  };

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable doneCv_;
  Job job_;
  uint64_t generation_ = 0;
  unsigned running_ = 0;
  bool shutdown_ = false;
  unsigned teamSize_;
  NestedPolicy nested_ = NestedPolicy::Serialize;
};

/// A serial dispatch queue in the style of Grand Central Dispatch, used by
/// the MocCUDA CUDART layer to emulate CUDA streams (§V-B): work items
/// execute asynchronously but in FIFO order; sync() waits for drain.
class DispatchQueue {
public:
  DispatchQueue();
  ~DispatchQueue();
  DispatchQueue(const DispatchQueue &) = delete;
  DispatchQueue &operator=(const DispatchQueue &) = delete;

  /// Enqueues a task; returns immediately.
  void async(std::function<void()> task);
  /// Blocks until every previously enqueued task has finished.
  void sync();

private:
  void loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idleCv_;
  std::vector<std::function<void()>> tasks_;
  bool busy_ = false;
  bool shutdown_ = false;
  // Declared last (and started in the constructor body) so the worker
  // can never observe partially constructed synchronization state.
  std::thread worker_;
};

} // namespace paralift::runtime
