// CPU execution runtime: a persistent worker pool with OpenMP-like teams.
//
// A "team" executes one parallel region: the calling thread becomes team
// member 0 and pool workers join as members 1..n-1. Teams own a
// std::barrier used to implement omp.barrier. Nested parallel regions
// follow a configurable policy: Serialize (team of one — the paper's
// inner-serialization mode) or Spawn (fresh std::threads, reproducing the
// real cost of OpenMP nested parallelism that Fig. 12 measures).
#pragma once

#include <atomic>
#include <barrier>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace paralift::runtime {

/// Execution context of one parallel region.
class Team {
public:
  explicit Team(unsigned size) : size_(size), barrier_(size) {}

  unsigned size() const { return size_; }
  /// Blocks until all team members arrive (omp.barrier semantics).
  void barrier() { barrier_.arrive_and_wait(); }

private:
  unsigned size_;
  std::barrier<> barrier_;
};

enum class NestedPolicy { Serialize, Spawn };

/// Work item run by each team member: fn(tid, team).
using TeamFn = std::function<void(unsigned, Team &)>;

class ThreadPool {
public:
  /// Creates `maxThreads - 1` persistent workers (the caller is the
  /// remaining member of every top-level team).
  explicit ThreadPool(unsigned maxThreads);
  ~ThreadPool();
  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Team size used for subsequent top-level parallel regions. Clamped to
  /// the pool capacity.
  void setNumThreads(unsigned n);
  unsigned numThreads() const { return teamSize_; }
  unsigned capacity() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  void setNestedPolicy(NestedPolicy p) { nested_ = p; }
  NestedPolicy nestedPolicy() const { return nested_; }

  /// Executes `fn` on a team. Called from the application thread this uses
  /// the persistent workers; called from inside a team (nested region), it
  /// applies the nested policy.
  void parallel(const TeamFn &fn);

  /// True when invoked from a pool worker or a spawned nested thread.
  static bool insideParallel();

private:
  void workerLoop(unsigned workerIdx);
  void runNested(const TeamFn &fn);

  struct Job {
    const TeamFn *fn = nullptr;
    Team *team = nullptr;
    unsigned participants = 0; // workers used by this job
  };

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable doneCv_;
  Job job_;
  uint64_t generation_ = 0;
  unsigned running_ = 0;
  bool shutdown_ = false;
  unsigned teamSize_;
  NestedPolicy nested_ = NestedPolicy::Serialize;
};

/// Dynamic work-stealing task scheduler for dependency-DAG workloads
/// (notably the compile-time batch DAG of PassManager::scheduleBatch).
/// Tasks are closures spawned either before run() or from inside running
/// tasks; dependency edges are expressed by the producer spawning the
/// successor when its predecessors complete (the last-finisher-spawns
/// pattern), so there is no static edge table to size up front and the
/// graph can grow as parsing discovers work.
///
/// Scheduling: each worker owns a deque. Own work is pushed and popped
/// LIFO — a chain of continuations (e.g. one module's pipeline) runs
/// depth-first on one worker, keeping its IR cache-hot and completing
/// whole jobs early instead of breadth-first last. Other workers steal
/// FIFO, taking the oldest queued task (typically an unstarted job's
/// leaf). External spawns land in a shared injection queue consumed
/// before stealing. Idle workers sleep on a condition variable with a
/// short timed wait (the timeout makes a lost wakeup cost a millisecond,
/// never a hang), and run() returns once every spawned task — including
/// transitively spawned ones — has finished.
class TaskScheduler {
public:
  /// A unit of work; receives the executing worker's index in
  /// [0, workers()).
  using Task = std::function<void(unsigned worker)>;

  /// Schedules onto `pool` (every member of one team drains the graph
  /// together). A null pool, a one-thread pool, or a caller already
  /// inside a parallel region degrade to draining every task on the
  /// calling thread (depth-first, deterministic).
  explicit TaskScheduler(ThreadPool *pool);

  /// Enqueues a task. Thread-safe; callable before run() and from inside
  /// running tasks (which is how DAG edges are expressed).
  void spawn(Task task);

  /// Runs tasks until none are pending, then returns. Not reentrant; may
  /// be called repeatedly after spawning more work.
  void run();

  /// Worker count run() will use (1 in the serial fallback).
  unsigned workers() const { return workers_; }

  /// Scheduling introspection, accumulated over this scheduler's
  /// lifetime. The same figures feed the process-wide MetricsRegistry
  /// ("scheduler.*"), where they aggregate across schedulers.
  struct Stats {
    uint64_t tasksExecuted = 0;  ///< tasks run to completion
    uint64_t steals = 0;         ///< takes from a sibling's deque
    uint64_t injects = 0;        ///< spawns from outside any worker
    uint64_t parks = 0;          ///< idle waits on the condition variable
    uint64_t idleWakeups = 0;    ///< parks that woke to find work
    uint64_t taskExceptions = 0; ///< tasks that exited via exception
  };
  Stats stats() const;

  /// Last-line containment: a task lambda that exits via exception is
  /// swallowed here (counted in Stats::taskExceptions and the
  /// "scheduler.task_exceptions" metric) instead of unwinding into the
  /// worker loop and calling std::terminate. Failure *attribution* is the
  /// spawner's job — batch tasks catch at the job boundary and record a
  /// diagnostic; this hook only guarantees the scheduler and its pending
  /// count survive a missed catch. The handler runs on the throwing
  /// worker with the exception message (or "" for non-std exceptions).
  void setExceptionHandler(std::function<void(const char *)> handler) {
    onTaskException_ = std::move(handler);
  }

private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  bool tryTake(unsigned self, Task &out, bool &stolen);
  void workerLoop(unsigned self);

  ThreadPool *pool_;
  unsigned workers_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::mutex injectMutex_;
  std::condition_variable idleCv_;
  std::deque<Task> inject_;
  /// Tasks spawned but not yet completed; 0 means the graph is drained
  /// (running tasks hold their own count until they return, so 0 is
  /// stable).
  std::atomic<size_t> pending_{0};

  std::atomic<uint64_t> tasksExecuted_{0};
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> injects_{0};
  std::atomic<uint64_t> parks_{0};
  std::atomic<uint64_t> idleWakeups_{0};
  std::atomic<uint64_t> taskExceptions_{0};
  std::function<void(const char *)> onTaskException_;
};

/// A serial dispatch queue in the style of Grand Central Dispatch, used by
/// the MocCUDA CUDART layer to emulate CUDA streams (§V-B): work items
/// execute asynchronously but in FIFO order; sync() waits for drain.
class DispatchQueue {
public:
  DispatchQueue();
  ~DispatchQueue();
  DispatchQueue(const DispatchQueue &) = delete;
  DispatchQueue &operator=(const DispatchQueue &) = delete;

  /// Enqueues a task; returns immediately.
  void async(std::function<void()> task);
  /// Blocks until every previously enqueued task has finished.
  void sync();

private:
  void loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idleCv_;
  std::vector<std::function<void()>> tasks_;
  bool busy_ = false;
  bool shutdown_ = false;
  // Declared last (and started in the constructor body) so the worker
  // can never observe partially constructed synchronization state.
  std::thread worker_;
};

} // namespace paralift::runtime
