#include "runtime/thread_pool.h"

#include "support/failpoint.h"
#include "support/metrics.h"
#include "support/trace.h"

#include <cassert>
#include <chrono>
#include <cstdio>

namespace paralift::runtime {

namespace {
thread_local int tlsParallelDepth = 0;
} // namespace

ThreadPool::ThreadPool(unsigned maxThreads) : teamSize_(maxThreads) {
  assert(maxThreads >= 1);
  workers_.reserve(maxThreads - 1);
  for (unsigned i = 0; i + 1 < maxThreads; ++i)
    workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto &w : workers_)
    w.join();
}

void ThreadPool::setNumThreads(unsigned n) {
  teamSize_ = std::max(1u, std::min(n, capacity()));
}

bool ThreadPool::insideParallel() { return tlsParallelDepth > 0; }

void ThreadPool::parallel(const TeamFn &fn) {
  if (insideParallel()) {
    runNested(fn);
    return;
  }
  unsigned size = teamSize_;
  if (size == 1) {
    Team team(1);
    ++tlsParallelDepth;
    fn(0, team);
    --tlsParallelDepth;
    return;
  }
  Team team(size);
  {
    std::scoped_lock lock(mutex_);
    job_.fn = &fn;
    job_.team = &team;
    job_.participants = size - 1;
    running_ = size - 1;
    ++generation_;
  }
  cv_.notify_all();
  ++tlsParallelDepth;
  fn(0, team);
  --tlsParallelDepth;
  std::unique_lock lock(mutex_);
  doneCv_.wait(lock, [this] { return running_ == 0; });
}

void ThreadPool::workerLoop(unsigned workerIdx) {
  uint64_t seen = 0;
  while (true) {
    const TeamFn *fn = nullptr;
    Team *team = nullptr;
    bool participate = false;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_)
        return;
      seen = generation_;
      if (workerIdx < job_.participants) {
        fn = job_.fn;
        team = job_.team;
        participate = true;
      }
    }
    if (participate) {
      ++tlsParallelDepth;
      (*fn)(workerIdx + 1, *team);
      --tlsParallelDepth;
      {
        std::scoped_lock lock(mutex_);
        --running_;
      }
      doneCv_.notify_one();
    }
  }
}

void ThreadPool::runNested(const TeamFn &fn) {
  if (nested_ == NestedPolicy::Serialize) {
    Team team(1);
    ++tlsParallelDepth;
    fn(0, team);
    --tlsParallelDepth;
    return;
  }
  // Spawn: fresh threads, on purpose reproducing the real cost of nested
  // OpenMP parallel regions.
  unsigned size = teamSize_;
  Team team(size);
  std::vector<std::thread> extra;
  extra.reserve(size - 1);
  for (unsigned t = 1; t < size; ++t)
    extra.emplace_back([&fn, &team, t] {
      ++tlsParallelDepth;
      fn(t, team);
      --tlsParallelDepth;
    });
  fn(0, team); // caller participates; already inside a parallel region
  for (auto &th : extra)
    th.join();
}

//===----------------------------------------------------------------------===//
// TaskScheduler
//===----------------------------------------------------------------------===//

namespace {
// Routes spawn() calls from inside a task to the executing worker's own
// deque (depth-first chains); spawns from any other thread fall back to
// the injection queue.
thread_local TaskScheduler *tlsScheduler = nullptr;
thread_local unsigned tlsSchedulerWorker = 0;

// Process-wide scheduler counters, resolved once. Individual schedulers
// additionally keep per-instance figures (TaskScheduler::stats()); the
// registry aggregates across every scheduler the process creates.
struct SchedCounters {
  metrics::Counter &tasks;
  metrics::Counter &steals;
  metrics::Counter &injects;
  metrics::Counter &parks;
  metrics::Counter &idleWakeups;
  metrics::Counter &taskExceptions;
};

SchedCounters &schedCounters() {
  auto &reg = metrics::MetricsRegistry::instance();
  static SchedCounters *c = new SchedCounters{
      reg.counter("scheduler.tasks"), reg.counter("scheduler.steals"),
      reg.counter("scheduler.injects"), reg.counter("scheduler.parks"),
      reg.counter("scheduler.idle_wakeups"),
      reg.counter("scheduler.task_exceptions")};
  return *c;
}
} // namespace

TaskScheduler::TaskScheduler(ThreadPool *pool)
    : pool_(pool),
      workers_(pool && pool->numThreads() > 1 && !ThreadPool::insideParallel()
                   ? pool->numThreads()
                   : 1) {
  queues_.reserve(workers_);
  for (unsigned i = 0; i < workers_; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
}

void TaskScheduler::spawn(Task task) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  if (tlsScheduler == this) {
    WorkerQueue &wq = *queues_[tlsSchedulerWorker];
    std::scoped_lock lock(wq.mutex);
    wq.tasks.push_back(std::move(task));
  } else {
    {
      std::scoped_lock lock(injectMutex_);
      inject_.push_back(std::move(task));
    }
    injects_.fetch_add(1, std::memory_order_relaxed);
    schedCounters().injects.add();
  }
  idleCv_.notify_one();
}

bool TaskScheduler::tryTake(unsigned self, Task &out, bool &stolen) {
  stolen = false;
  // Own deque first, newest first: continuations of the task that just
  // ran, still hot.
  {
    WorkerQueue &wq = *queues_[self];
    std::scoped_lock lock(wq.mutex);
    if (!wq.tasks.empty()) {
      out = std::move(wq.tasks.back());
      wq.tasks.pop_back();
      return true;
    }
  }
  // Externally injected work, oldest first.
  {
    std::scoped_lock lock(injectMutex_);
    if (!inject_.empty()) {
      out = std::move(inject_.front());
      inject_.pop_front();
      return true;
    }
  }
  // Steal the oldest task of a sibling (its least-recently-touched work).
  for (unsigned d = 1; d < workers_; ++d) {
    WorkerQueue &wq = *queues_[(self + d) % workers_];
    std::scoped_lock lock(wq.mutex);
    if (!wq.tasks.empty()) {
      out = std::move(wq.tasks.front());
      wq.tasks.pop_front();
      stolen = true;
      steals_.fetch_add(1, std::memory_order_relaxed);
      schedCounters().steals.add();
      return true;
    }
  }
  return false;
}

void TaskScheduler::workerLoop(unsigned self) {
  TaskScheduler *prevSched = tlsScheduler;
  unsigned prevWorker = tlsSchedulerWorker;
  tlsScheduler = this;
  tlsSchedulerWorker = self;
  if (trace::enabled()) {
    char name[32];
    std::snprintf(name, sizeof(name), "worker-%u", self);
    trace::setThreadName(name);
  }
  Task task;
  bool parked = false; // last loop iteration slept
  while (true) {
    bool stolen = false;
    if (tryTake(self, task, stolen)) {
      if (parked) {
        idleWakeups_.fetch_add(1, std::memory_order_relaxed);
        schedCounters().idleWakeups.add();
        parked = false;
      }
      {
        trace::TraceSpan span("task", "sched");
        if (stolen)
          span.annotate("origin", "stolen");
        // Last-line containment: an exception escaping a task must not
        // unwind into the worker loop (std::terminate kills every
        // in-flight job) and must not skip the pending_ decrement below
        // (run() would never return). Batch tasks catch at the job
        // boundary themselves; this only covers a missed site.
        try {
          failpoint::evaluate("scheduler.task");
          task(self);
        } catch (const std::exception &e) {
          span.annotate("error", "exception");
          taskExceptions_.fetch_add(1, std::memory_order_relaxed);
          schedCounters().taskExceptions.add();
          if (onTaskException_)
            onTaskException_(e.what());
        } catch (...) {
          span.annotate("error", "exception");
          taskExceptions_.fetch_add(1, std::memory_order_relaxed);
          schedCounters().taskExceptions.add();
          if (onTaskException_)
            onTaskException_("");
        }
      }
      tasksExecuted_.fetch_add(1, std::memory_order_relaxed);
      schedCounters().tasks.add();
      task = nullptr; // drop captures before possibly sleeping
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1)
        idleCv_.notify_all();
      continue;
    }
    if (pending_.load(std::memory_order_acquire) == 0)
      break;
    // Work may land in a sibling deque between tryTake and the wait
    // (deque pushes are not covered by injectMutex_); the timed wait
    // bounds that race to a millisecond of latency instead of a hang.
    std::unique_lock lock(injectMutex_);
    if (!inject_.empty() || pending_.load(std::memory_order_acquire) == 0)
      continue;
    parks_.fetch_add(1, std::memory_order_relaxed);
    schedCounters().parks.add();
    parked = true;
    idleCv_.wait_for(lock, std::chrono::milliseconds(1));
  }
  tlsScheduler = prevSched;
  tlsSchedulerWorker = prevWorker;
}

TaskScheduler::Stats TaskScheduler::stats() const {
  Stats s;
  s.tasksExecuted = tasksExecuted_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.injects = injects_.load(std::memory_order_relaxed);
  s.parks = parks_.load(std::memory_order_relaxed);
  s.idleWakeups = idleWakeups_.load(std::memory_order_relaxed);
  s.taskExceptions = taskExceptions_.load(std::memory_order_relaxed);
  return s;
}

void TaskScheduler::run() {
  if (pending_.load(std::memory_order_acquire) == 0)
    return;
  if (workers_ <= 1) {
    // Serial drain on the caller: tasks only appear from running tasks,
    // so an empty take with pending > 0 is impossible here.
    workerLoop(0);
    return;
  }
  pool_->parallel([this](unsigned tid, Team &) { workerLoop(tid); });
}

//===----------------------------------------------------------------------===//
// DispatchQueue
//===----------------------------------------------------------------------===//

DispatchQueue::DispatchQueue() {
  // Start the worker from the constructor body, not the member-init list:
  // worker_ is declared before the mutex/cv/flags it synchronizes with,
  // so a list-initialized thread could enter loop() before those members
  // exist (observed as a deadlock on small machines).
  worker_ = std::thread([this] { loop(); });
}

DispatchQueue::~DispatchQueue() {
  {
    std::scoped_lock lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void DispatchQueue::async(std::function<void()> task) {
  {
    std::scoped_lock lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void DispatchQueue::sync() {
  std::unique_lock lock(mutex_);
  idleCv_.wait(lock, [this] { return tasks_.empty() && !busy_; });
}

void DispatchQueue::loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty())
        return;
      task = std::move(tasks_.front());
      tasks_.erase(tasks_.begin());
      busy_ = true;
    }
    task();
    {
      std::scoped_lock lock(mutex_);
      busy_ = false;
    }
    idleCv_.notify_all();
  }
}

} // namespace paralift::runtime
