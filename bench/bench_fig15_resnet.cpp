// Fig. 15 reproduction: residual-network training throughput (images/s)
// with the MocCUDA backends vs the native and oneDNN-style baselines.
// The Polygeist backend's PyTorch kernels are transpiled once per
// process through a shared CompilerSession (moccuda/resnet.cpp), so the
// dozens of MiniResNet constructions this sweep performs reuse one
// compiled module instead of re-running the pipeline per cell.
// Left: heatmap of MocCUDA+Polygeist / OneDNN relative throughput across
// batch size x threads. Right: geomean throughput per backend across
// batch sizes. The paper reports MocCUDA beating Fujitsu-tuned oneDNN by
// a geomean of 2.7x on Fugaku.
#include "moccuda/resnet.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <random>
#include <vector>

using namespace paralift;
using namespace paralift::moccuda;

namespace {

double now() {
  using namespace std::chrono;
  return duration<double>(steady_clock::now().time_since_epoch()).count();
}

double geomean(const std::vector<double> &xs) {
  double s = 0;
  for (double x : xs)
    s += std::log(x);
  return xs.empty() ? 0 : std::exp(s / xs.size());
}

// 32x32 images (scaled-down ImageNet) with a 16-channel model: large
// enough that convolution dominates the step and the backends'
// organizational differences (GEMM vs direct, per-image parallelism)
// drive the measurement rather than thread-pool overheads.
constexpr int kImageDim = 32;
constexpr int kChannels = 16;

Tensor randomImages(int n, uint32_t seed) {
  Tensor t(n, 3, kImageDim, kImageDim);
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (auto &v : t.data)
    v = dist(rng);
  return t;
}

/// images/s of fwd+bwd training steps.
double throughput(Backend backend, runtime::ThreadPool &pool, int batch,
                  unsigned threads) {
  pool.setNumThreads(threads);
  MiniResNet model(backend, pool, kChannels);
  Tensor images = randomImages(batch, 55);
  std::vector<int32_t> labels(batch);
  for (int i = 0; i < batch; ++i)
    labels[i] = i % 10;
  model.trainStep(images, labels); // warmup
  int steps = 3;
  double t0 = now();
  for (int s = 0; s < steps; ++s)
    model.trainStep(images, labels);
  double dt = now() - t0;
  return steps * batch / dt;
}

void printTables() {
  runtime::ThreadPool pool(8);
  const std::vector<int> batches = {1, 2, 4, 8};
  const std::vector<unsigned> threads = {1, 2, 4};
  const std::vector<Backend> backends = {
      Backend::Native, Backend::OneDnnLike, Backend::MocCudaExpert,
      Backend::MocCudaPolygeist};

  // Measure every (backend, threads, batch) cell exactly once; both the
  // heatmap and the geomean table below are views of this grid.
  // cells[backend][thread][batch] = images/s.
  std::vector<std::vector<std::vector<double>>> cells(
      backends.size(), std::vector<std::vector<double>>(
                           threads.size(),
                           std::vector<double>(batches.size(), 0.0)));
  for (size_t bk = 0; bk < backends.size(); ++bk)
    for (size_t ti = 0; ti < threads.size(); ++ti)
      for (size_t bi = 0; bi < batches.size(); ++bi)
        cells[bk][ti][bi] =
            throughput(backends[bk], pool, batches[bi], threads[ti]);

  std::printf("\n=== Fig. 15 (left): relative throughput of "
              "MocCUDA+Polygeist over OneDNN-like backend ===\n\n");
  std::printf("%-10s", "threads");
  for (int b : batches)
    std::printf("  batch%-4d", b);
  std::printf("\n");
  for (size_t ti = 0; ti < threads.size(); ++ti) {
    std::printf("%-10u", threads[ti]);
    for (size_t bi = 0; bi < batches.size(); ++bi)
      std::printf("  %9.2f", cells[3][ti][bi] / cells[1][ti][bi]);
    std::printf("\n");
  }

  std::printf("\n=== Fig. 15 (right): geomean throughput (images/s) "
              "across batch sizes ===\n\n");
  std::printf("%-22s", "backend");
  for (unsigned t : threads)
    std::printf("  thr@%-6u", t);
  std::printf("\n");
  std::vector<std::vector<double>> perBackend;
  for (size_t bk = 0; bk < backends.size(); ++bk) {
    std::printf("%-22s", backendName(backends[bk]));
    std::vector<double> row;
    for (size_t ti = 0; ti < threads.size(); ++ti) {
      row.push_back(geomean(cells[bk][ti]));
      std::printf("  %9.2f", row.back());
    }
    perBackend.push_back(row);
    std::printf("\n");
  }
  std::vector<double> mocOverDnn;
  for (size_t i = 0; i < threads.size(); ++i)
    mocOverDnn.push_back(perBackend[3][i] / perBackend[1][i]);
  std::printf("\nMocCUDA+Polygeist over OneDNN-like geomean: %.2fx "
              "(paper on Fugaku: 2.7x geomean, up to 4.5x)\n",
              geomean(mocOverDnn));
  std::printf("MocCUDA+Polygeist vs MocCUDA+Expert geomean: %.2fx "
              "(paper: comparable)\n",
              geomean({perBackend[3][0] / perBackend[2][0],
                       perBackend[3][1] / perBackend[2][1],
                       perBackend[3][2] / perBackend[2][2]}));
}

void BM_TrainStepMocCuda(benchmark::State &state) {
  runtime::ThreadPool pool(2);
  MiniResNet model(Backend::MocCudaExpert, pool);
  Tensor images = randomImages(2, 77);
  std::vector<int32_t> labels = {1, 2};
  for (auto _ : state)
    benchmark::DoNotOptimize(model.trainStep(images, labels));
}
BENCHMARK(BM_TrainStepMocCuda)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printTables();
  return 0;
}
