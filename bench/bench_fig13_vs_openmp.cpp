// Fig. 13 (right) reproduction: speedup of transpiled CUDA code over the
// hand-written OpenMP reference for each Rodinia benchmark, with and
// without inner serialization. The paper reports a 76% geomean
// improvement with inner serialization and 43.7% without.
#include "bench_common.h"

#include <benchmark/benchmark.h>

using namespace paralift;
using namespace paralift::bench;

namespace {

void printTable() {
  std::printf("\n=== Fig. 13 (right): transpiled CUDA vs native OpenMP "
              "(speedup over OpenMP; >1 means CUDA-OpenMP wins) ===\n\n");
  std::printf("%-28s%14s%14s%14s\n", "benchmark", "t_openmp(s)",
              "CUDA/InnerSer", "CUDA/InnerPar");

  // Both CUDA variants of the whole suite compile as one session batch
  // (two pipeline groups sharing the pool); measurements below only run
  // the precompiled modules.
  transforms::PipelineOptions ser;
  transforms::PipelineOptions par;
  par.innerSerialize = false;
  driver::CompilerSession session = makeSuiteSession(/*threads=*/2);
  std::vector<driver::CompileJob *> serJobs, parJobs;
  for (const auto &b : rodinia::suite()) {
    serJobs.push_back(&session.addSource(b.id + "-ser", b.cudaSource, ser));
    parJobs.push_back(&session.addSource(b.id + "-par", b.cudaSource, par));
  }
  session.compileAll();

  auto timeJob = [](const rodinia::Benchmark &b, driver::CompileJob *job,
                    bool innerSerialize) {
    if (!job->ok()) {
      std::fprintf(stderr, "compile failed for %s:\n%s\n",
                   job->name().c_str(), job->diagnostics().str().c_str());
      return -1.0;
    }
    return timeCompiled(b, job->result().module.get(), innerSerialize,
                        /*scale=*/10, /*threads=*/2);
  };

  std::vector<double> serSpeedups, parSpeedups;
  size_t bi = 0;
  for (const auto &b : rodinia::suite()) {
    size_t i = bi++;
    if (!b.openmpSource)
      continue;
    double tOmp = timeOpenmp(b, /*scale=*/10, /*threads=*/2);
    double tSer = timeJob(b, serJobs[i], /*innerSerialize=*/true);
    double tPar = timeJob(b, parJobs[i], /*innerSerialize=*/false);
    double sSer = tSer > 0 ? tOmp / tSer : 0;
    double sPar = tPar > 0 ? tOmp / tPar : 0;
    if (sSer > 0)
      serSpeedups.push_back(sSer);
    if (sPar > 0)
      parSpeedups.push_back(sPar);
    std::printf("%-28s%14.4f%14.3f%14.3f\n", b.name.c_str(), tOmp, sSer,
                sPar);
  }
  std::printf("\nGeomean speedup over OpenMP (paper: 1.76x with innerser, "
              "1.437x without):\n");
  std::printf("  InnerSer: %.3fx\n", geomean(serSpeedups));
  std::printf("  InnerPar: %.3fx\n", geomean(parSpeedups));
}

void BM_VsOpenmpOne(benchmark::State &state) {
  const auto &b = rodinia::suite()[static_cast<size_t>(state.range(0))];
  for (auto _ : state)
    benchmark::DoNotOptimize(timeOpenmp(b, 1, 2, 1));
}
BENCHMARK(BM_VsOpenmpOne)->Arg(2)->Iterations(1)->Unit(
    benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printTable();
  return 0;
}
