// Shared harness utilities for the figure-reproduction benchmarks.
// Each bench binary prints the rows/series of one paper table or figure;
// absolute numbers are interpreter-scale (see EXPERIMENTS.md), the
// comparisons are the reproduction target.
#pragma once

#include "rodinia/rodinia.h"
#include "transforms/pass_manager.h"

#include <algorithm>
#include <cmath>
#include <chrono>
#include <thread>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace paralift::bench {

inline double now() {
  using namespace std::chrono;
  return duration<double>(steady_clock::now().time_since_epoch()).count();
}

/// Median-of-N wall-clock seconds.
template <typename Fn> double medianTime(Fn &&fn, int reps = 3) {
  std::vector<double> times;
  for (int r = 0; r < reps; ++r) {
    double t0 = now();
    fn();
    times.push_back(now() - t0);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Median-of-N kernel seconds: `setup()` builds fresh state outside the
/// timed region (workload construction is serial host work and must not
/// dilute the parallel measurements), `run(state)` is timed.
template <typename Setup, typename Run>
double medianKernelTime(Setup &&setup, Run &&run, int reps = 3) {
  std::vector<double> times;
  for (int r = 0; r < reps; ++r) {
    auto state = setup();
    double t0 = now();
    run(state);
    times.push_back(now() - t0);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Accumulates per-pass timing records across many compilations,
/// aggregated by canonical pass spec in first-seen (pipeline) order.
class PassTimeAggregator {
public:
  void add(const transforms::PassTimingReport &report) {
    for (const auto &r : report.records) {
      auto it = std::find_if(agg_.begin(), agg_.end(), [&](const auto &p) {
        return p.first == r.spec;
      });
      if (it == agg_.end())
        agg_.emplace_back(r.spec, r.seconds);
      else
        it->second += r.seconds;
    }
  }

  /// Prints one row per pass with its share of the total, then the total.
  void print() const {
    double total = 0;
    for (const auto &[spec, secs] : agg_)
      total += secs;
    for (const auto &[spec, secs] : agg_)
      std::fputs(transforms::formatTimingRow(secs, total, spec).c_str(),
                 stdout);
    std::printf("  %10.6f s total\n", total);
  }

private:
  std::vector<std::pair<std::string, double>> agg_;
};

/// Compiles every suite benchmark with per-pass timing enabled and
/// accumulates the records into one aggregator.
inline PassTimeAggregator
timeSuiteCompiles(const transforms::PipelineOptions &opts) {
  PassTimeAggregator agg;
  for (const auto &b : rodinia::suite()) {
    DiagnosticEngine diag;
    transforms::PassRunConfig config;
    transforms::PassTimingReport report;
    config.timing = &report;
    auto cc = driver::compile(b.cudaSource, opts, diag, config);
    if (!cc.ok)
      std::fprintf(stderr, "compile failed for %s:\n%s\n", b.id.c_str(),
                   diag.str().c_str());
    agg.add(report);
  }
  return agg;
}

inline double geomean(const std::vector<double> &xs) {
  if (xs.empty())
    return 0.0;
  double logSum = 0;
  for (double x : xs)
    logSum += std::log(x);
  return std::exp(logSum / xs.size());
}

/// Compiles a Rodinia benchmark's CUDA source with the given options and
/// returns the median time of running `run` on a workload of `scale`.
inline double timeCuda(const rodinia::Benchmark &b,
                       const transforms::PipelineOptions &opts, int scale,
                       unsigned threads, int reps = 3) {
  DiagnosticEngine diag;
  auto cc = driver::compile(b.cudaSource, opts, diag);
  if (!cc.ok) {
    std::fprintf(stderr, "compile failed for %s:\n%s\n", b.id.c_str(),
                 diag.str().c_str());
    return -1;
  }
  driver::Executor exec(cc.module.get(), std::max(threads, 8u),
                        /*boundsCheck=*/false);
  exec.setNumThreads(threads);
  exec.setNestedPolicy(opts.innerSerialize
                           ? runtime::NestedPolicy::Serialize
                           : runtime::NestedPolicy::Spawn);
  return medianKernelTime(
      [&] { return b.makeWorkload(scale); },
      [&](rodinia::Workload &w) { exec.run("run", w.args()); }, reps);
}

inline double timeOpenmp(const rodinia::Benchmark &b, int scale,
                         unsigned threads, int reps = 3) {
  if (!b.openmpSource)
    return -1;
  DiagnosticEngine diag;
  transforms::PipelineOptions opts;
  auto cc = driver::compile(b.openmpSource, opts, diag);
  if (!cc.ok) {
    std::fprintf(stderr, "compile failed for %s (omp):\n%s\n", b.id.c_str(),
                 diag.str().c_str());
    return -1;
  }
  driver::Executor exec(cc.module.get(), std::max(threads, 8u),
                        /*boundsCheck=*/false);
  exec.setNumThreads(threads);
  return medianKernelTime(
      [&] { return b.makeWorkload(scale); },
      [&](rodinia::Workload &w) { exec.run("run", w.args()); }, reps);
}

} // namespace paralift::bench
