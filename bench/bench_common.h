// Shared harness utilities for the figure-reproduction benchmarks.
// Each bench binary prints the rows/series of one paper table or figure;
// absolute numbers are interpreter-scale (see EXPERIMENTS.md), the
// comparisons are the reproduction target.
#pragma once

#include "ir/hasher.h"
#include "ir/ophelpers.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "rodinia/rodinia.h"
#include "transforms/pass_cache.h"
#include "transforms/pass_manager.h"

#include <algorithm>
#include <cmath>
#include <chrono>
#include <thread>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace paralift::bench {

inline double now() {
  using namespace std::chrono;
  return duration<double>(steady_clock::now().time_since_epoch()).count();
}

/// Median-of-N wall-clock seconds.
template <typename Fn> double medianTime(Fn &&fn, int reps = 3) {
  std::vector<double> times;
  for (int r = 0; r < reps; ++r) {
    double t0 = now();
    fn();
    times.push_back(now() - t0);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Median-of-N kernel seconds: `setup()` builds fresh state outside the
/// timed region (workload construction is serial host work and must not
/// dilute the parallel measurements), `run(state)` is timed.
template <typename Setup, typename Run>
double medianKernelTime(Setup &&setup, Run &&run, int reps = 3) {
  std::vector<double> times;
  for (int r = 0; r < reps; ++r) {
    auto state = setup();
    double t0 = now();
    run(state);
    times.push_back(now() - t0);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Accumulates per-pass timing and peak-RSS records across many
/// compilations, aggregated by canonical pass spec in first-seen
/// (pipeline) order.
class PassTimeAggregator {
public:
  void add(const transforms::PassTimingReport &report) {
    for (const auto &r : report.records) {
      auto it = std::find_if(agg_.begin(), agg_.end(), [&](const auto &p) {
        return p.spec == r.spec;
      });
      if (it == agg_.end())
        agg_.push_back({r.spec, r.seconds, r.rssDeltaBytes,
                        r.arenaDeltaBytes});
      else {
        it->seconds += r.seconds;
        it->rssDeltaBytes += r.rssDeltaBytes;
        it->arenaDeltaBytes += r.arenaDeltaBytes;
      }
    }
  }

  double totalSeconds() const {
    double total = 0;
    for (const auto &row : agg_)
      total += row.seconds;
    return total;
  }

  /// Prints one row per pass with its share of the total, its summed
  /// peak-RSS growth, and its summed IR-arena growth, then the total.
  void print() const {
    double total = totalSeconds();
    uint64_t totalRss = 0, totalArena = 0;
    for (const auto &row : agg_) {
      totalRss += row.rssDeltaBytes;
      totalArena += row.arenaDeltaBytes;
    }
    for (const auto &row : agg_)
      std::fputs(transforms::formatTimingRow(row.seconds, total,
                                             row.rssDeltaBytes,
                                             row.arenaDeltaBytes, row.spec)
                     .c_str(),
                 stdout);
    std::printf("  %10.6f s total, peak-RSS +%.2f MB, IR-arena +%.2f MB\n",
                total, totalRss / (1024.0 * 1024.0),
                totalArena / (1024.0 * 1024.0));
  }

private:
  struct Row {
    std::string spec;
    double seconds = 0;
    uint64_t rssDeltaBytes = 0;
    uint64_t arenaDeltaBytes = 0;
  };
  std::vector<Row> agg_;
};

/// The suite's frontend output, parsed once and cloned per pipeline run
/// (re-running lexer/parser/irgen per stage wastes most of an ablation
/// sweep's compile time). Benchmarks whose frontend failed are marked
/// invalid and skipped by the consumers (never fed into the pipeline or
/// the executor).
struct SuiteModules {
  std::vector<ir::OwnedModule> modules; ///< rodinia::suite() order
  std::vector<char> valid;              ///< parallel to modules

  bool isValid(size_t i) const { return i < valid.size() && valid[i]; }
};

inline SuiteModules parseSuiteModules() {
  SuiteModules out;
  for (const auto &b : rodinia::suite()) {
    DiagnosticEngine diag;
    out.modules.push_back(frontend::compileToIR(b.cudaSource, diag));
    // Same gate driver::compile applies: diagnostics clean AND the
    // produced IR structurally valid.
    bool ok = !diag.hasErrors() && ir::verifyOk(out.modules.back().op());
    out.valid.push_back(ok ? 1 : 0);
    if (!ok)
      std::fprintf(stderr, "frontend failed for %s:\n%s\n", b.id.c_str(),
                   diag.str().c_str());
  }
  return out;
}

/// SessionOptions preconfigured for suite compiles: no env cache (bench
/// numbers must not depend on the caller's environment), the given
/// shared cache and worker-pool size. Every bench session derives from
/// this so the no-env-cache invariant lives in one place.
inline driver::SessionOptions
suiteSessionOptions(unsigned threads = 1,
                    transforms::PassResultCache *cache = nullptr,
                    bool collectTiming = false) {
  driver::SessionOptions so;
  so.threads = threads;
  so.cache = cache;
  so.useEnvCache = false;
  so.collectTiming = collectTiming;
  return so;
}

inline driver::CompilerSession
makeSuiteSession(unsigned threads = 1,
                 transforms::PassResultCache *cache = nullptr,
                 bool collectTiming = false) {
  return driver::CompilerSession(
      suiteSessionOptions(threads, cache, collectTiming));
}

/// Runs the optimization pipeline over clones of the pre-parsed suite
/// through one batch session with per-pass timing enabled; `cache`
/// (optional) is the shared pass-result cache exercised across stages,
/// `threads` the session's worker pool.
inline PassTimeAggregator
timeSuiteCompiles(const transforms::PipelineOptions &opts,
                  const SuiteModules &suite,
                  transforms::PassResultCache *cache = nullptr,
                  unsigned threads = 1) {
  driver::CompilerSession session =
      makeSuiteSession(threads, cache, /*collectTiming=*/true);
  size_t idx = 0;
  for (const auto &b : rodinia::suite()) {
    size_t i = idx++;
    if (!suite.isValid(i))
      continue;
    session.addModule(b.id, ir::cloneModule(suite.modules[i].get()), opts);
  }
  session.compileAll();
  for (size_t i = 0; i < session.jobCount(); ++i)
    if (!session.job(i).ok())
      std::fprintf(stderr, "compile failed for %s:\n%s\n",
                   session.job(i).name().c_str(),
                   session.job(i).diagnostics().str().c_str());
  PassTimeAggregator agg;
  agg.add(session.timingReport());
  return agg;
}

/// Legacy entry point: parses the suite on every call.
inline PassTimeAggregator
timeSuiteCompiles(const transforms::PipelineOptions &opts) {
  SuiteModules suite = parseSuiteModules();
  return timeSuiteCompiles(opts, suite);
}

/// Compiles every suite benchmark's CUDA source through one batch
/// session. jobs[] is parallel to rodinia::suite(); entries are null for
/// benchmarks whose compile failed (already reported to stderr).
struct SuiteSession {
  std::unique_ptr<driver::CompilerSession> session;
  std::vector<driver::CompileJob *> jobs;
};

inline SuiteSession
compileSuiteSession(const transforms::PipelineOptions &opts,
                    unsigned threads = 1,
                    transforms::PassResultCache *cache = nullptr) {
  SuiteSession out;
  out.session = std::make_unique<driver::CompilerSession>(
      suiteSessionOptions(threads, cache));
  for (const auto &b : rodinia::suite())
    out.jobs.push_back(&out.session->addSource(b.id, b.cudaSource, opts));
  out.session->compileAll();
  for (auto *&job : out.jobs)
    if (!job->ok()) {
      std::fprintf(stderr, "compile failed for %s:\n%s\n",
                   job->name().c_str(), job->diagnostics().str().c_str());
      job = nullptr;
    }
  return out;
}

/// Cache-keying cost over the parsed suite: the structural hasher
/// (ir::hashOp — what the pass cache keys on) against the printed-hash
/// baseline it replaced (hashBytes(printOp)). Keying is what the DAG
/// scheduler fans out as per-module leaf tasks (and the lockstep
/// prologue fans across the pool), so the per-function cost here is the
/// unit of that parallel work.
struct KeyingTimes {
  double printedSeconds = 0;
  double structuralSeconds = 0;
  size_t funcs = 0;
  int rounds = 0;
};

inline KeyingTimes measureKeyingTime(const SuiteModules &suite,
                                     int rounds = 50) {
  KeyingTimes out;
  out.rounds = rounds;
  for (size_t i = 0; i < suite.modules.size(); ++i)
    if (suite.isValid(i))
      for (ir::Op *op : suite.modules[i].get().body())
        if (op->kind() == ir::OpKind::Func)
          ++out.funcs;
  // volatile sinks keep the hash loops from folding away without pulling
  // google-benchmark into this header.
  volatile uint64_t sink = 0;
  out.printedSeconds = medianTime([&] {
    uint64_t acc = 0;
    for (int r = 0; r < rounds; ++r)
      for (size_t i = 0; i < suite.modules.size(); ++i) {
        if (!suite.isValid(i))
          continue;
        for (ir::Op *op : suite.modules[i].get().body())
          if (op->kind() == ir::OpKind::Func)
            acc ^= transforms::hashBytes(ir::printOp(op)).lo;
      }
    sink = acc;
  });
  out.structuralSeconds = medianTime([&] {
    uint64_t acc = 0;
    for (int r = 0; r < rounds; ++r)
      for (size_t i = 0; i < suite.modules.size(); ++i) {
        if (!suite.isValid(i))
          continue;
        for (ir::Op *op : suite.modules[i].get().body())
          if (op->kind() == ir::OpKind::Func)
            acc ^= ir::hashOp(op).lo;
      }
    sink = acc;
  });
  (void)sink;
  return out;
}

inline void printKeyingTime(const KeyingTimes &k) {
  std::printf("\n=== Cache-keying time, whole suite x%d (structural "
              "ir::hashOp vs printed-hash baseline) ===\n\n",
              k.rounds);
  std::printf("  printed-hash baseline : %10.6f s  (%zu funcs x%d)\n",
              k.printedSeconds, k.funcs, k.rounds);
  std::printf("  structural ir::hashOp : %10.6f s  (%.2fx faster)\n",
              k.structuralSeconds,
              k.structuralSeconds > 0 ? k.printedSeconds / k.structuralSeconds
                                      : 0.0);
}

inline void printKeyingTime(const SuiteModules &suite, int rounds = 50) {
  printKeyingTime(measureKeyingTime(suite, rounds));
}

inline double geomean(const std::vector<double> &xs) {
  if (xs.empty())
    return 0.0;
  double logSum = 0;
  for (double x : xs)
    logSum += std::log(x);
  return std::exp(logSum / xs.size());
}

/// Median workload time of an already-compiled benchmark module.
inline double timeCompiled(const rodinia::Benchmark &b, ir::ModuleOp module,
                           bool innerSerialize, int scale, unsigned threads,
                           int reps = 3) {
  driver::Executor exec(module, std::max(threads, 8u),
                        /*boundsCheck=*/false);
  exec.setNumThreads(threads);
  exec.setNestedPolicy(innerSerialize ? runtime::NestedPolicy::Serialize
                                      : runtime::NestedPolicy::Spawn);
  return medianKernelTime(
      [&] { return b.makeWorkload(scale); },
      [&](rodinia::Workload &w) { exec.run("run", w.args()); }, reps);
}

/// As timeCuda below, but starting from a pre-parsed module (cloned, so
/// the original stays reusable across stages), compiled through a
/// single-job session.
inline double timeCudaModule(const rodinia::Benchmark &b,
                             ir::ModuleOp parsed,
                             const transforms::PipelineOptions &opts,
                             int scale, unsigned threads, int reps = 3) {
  driver::CompilerSession session = makeSuiteSession();
  driver::CompileJob &job =
      session.addModule(b.id, ir::cloneModule(parsed), opts);
  if (!session.compileAll()) {
    std::fprintf(stderr, "compile failed for %s:\n%s\n", b.id.c_str(),
                 job.diagnostics().str().c_str());
    return -1;
  }
  return timeCompiled(b, job.result().module.get(), opts.innerSerialize,
                      scale, threads, reps);
}

/// Compiles a Rodinia benchmark's CUDA source with the given options and
/// returns the median time of running `run` on a workload of `scale`.
inline double timeCuda(const rodinia::Benchmark &b,
                       const transforms::PipelineOptions &opts, int scale,
                       unsigned threads, int reps = 3) {
  DiagnosticEngine diag;
  auto cc = driver::compile(b.cudaSource, opts, diag);
  if (!cc.ok) {
    std::fprintf(stderr, "compile failed for %s:\n%s\n", b.id.c_str(),
                 diag.str().c_str());
    return -1;
  }
  return timeCompiled(b, cc.module.get(), opts.innerSerialize, scale,
                      threads, reps);
}

inline double timeOpenmp(const rodinia::Benchmark &b, int scale,
                         unsigned threads, int reps = 3) {
  if (!b.openmpSource)
    return -1;
  DiagnosticEngine diag;
  transforms::PipelineOptions opts;
  auto cc = driver::compile(b.openmpSource, opts, diag);
  if (!cc.ok) {
    std::fprintf(stderr, "compile failed for %s (omp):\n%s\n", b.id.c_str(),
                 diag.str().c_str());
    return -1;
  }
  driver::Executor exec(cc.module.get(), std::max(threads, 8u),
                        /*boundsCheck=*/false);
  exec.setNumThreads(threads);
  return medianKernelTime(
      [&] { return b.makeWorkload(scale); },
      [&](rodinia::Workload &w) { exec.run("run", w.args()); }, reps);
}

} // namespace paralift::bench
