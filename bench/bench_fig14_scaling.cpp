// Fig. 14 reproduction: thread-scaling (speedup T1/Tn) of the transpiled
// CUDA-OpenMP benchmarks compared with the native OpenMP versions.
// The paper's observation: transpiled CUDA code, written for thousands of
// GPU threads, scales better than hand-written OpenMP. Hardware note:
// this container exposes 2 cores, so curves flatten beyond 2 threads;
// see EXPERIMENTS.md.
#include "bench_common.h"

#include <benchmark/benchmark.h>

using namespace paralift;
using namespace paralift::bench;

namespace {

const std::vector<unsigned> kThreads = {1, 2, 4, 8};

void printTable() {
  std::printf("\n=== Fig. 14: scaling T1/Tn (left: CUDA-OpenMP, right: "
              "native OpenMP) ===\n\n");
  std::printf("%-28s", "benchmark");
  for (unsigned t : kThreads)
    std::printf("  cuda@%-4u", t);
  for (unsigned t : kThreads)
    std::printf("  omp@%-5u", t);
  std::printf("\n");

  // The whole suite compiles once, as one batch session; the scaling
  // sweep below reruns the precompiled modules at each team size.
  transforms::PipelineOptions opts;
  SuiteSession compiled = compileSuiteSession(opts, /*threads=*/2);

  std::vector<double> cudaAtMax, ompAtMax;
  size_t bi = 0;
  for (const auto &b : rodinia::suite()) {
    size_t i = bi++;
    std::printf("%-28s", b.name.c_str());
    driver::CompileJob *job = compiled.jobs[i];
    double cudaT1 = -1;
    for (unsigned t : kThreads) {
      double s = job ? timeCompiled(b, job->result().module.get(),
                                    opts.innerSerialize, /*scale=*/10, t)
                     : -1;
      if (cudaT1 < 0)
        cudaT1 = s;
      double speedup = s > 0 ? cudaT1 / s : 0;
      if (t == kThreads.back() && speedup > 0)
        cudaAtMax.push_back(speedup);
      std::printf("  %8.3f", speedup);
    }
    double ompT1 = -1;
    for (unsigned t : kThreads) {
      double s = timeOpenmp(b, 10, t);
      if (ompT1 < 0)
        ompT1 = s;
      double speedup = s > 0 ? ompT1 / s : 0;
      if (t == kThreads.back() && s > 0)
        ompAtMax.push_back(speedup);
      std::printf("  %8.3f", speedup);
    }
    std::printf("\n");
  }
  std::printf("\nGeomean speedup at %u threads (paper at 32 threads: "
              "CUDA-OpenMP 14.9x with innerser vs OpenMP 7.1x):\n",
              kThreads.back());
  std::printf("  CUDA-OpenMP: %.3fx\n", geomean(cudaAtMax));
  std::printf("  OpenMP:      %.3fx\n", geomean(ompAtMax));
}

void BM_ScalingOne(benchmark::State &state) {
  const auto &b = rodinia::suite()[static_cast<size_t>(state.range(0))];
  transforms::PipelineOptions opts;
  for (auto _ : state)
    benchmark::DoNotOptimize(timeCuda(b, opts, 1, 2, 1));
}
BENCHMARK(BM_ScalingOne)->Arg(4)->Iterations(1)->Unit(
    benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printTable();
  return 0;
}
