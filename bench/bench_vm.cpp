// VM-tier benchmark (ROADMAP "Hardened + faster VM tier" tracking file):
// suite-execution wall time of the bytecode interpreter under the three
// trust configurations the static verifier (vm/verifier.h) defines:
//
//   checked       - unverified module, boundsCheck on: per-access index
//                   checks plus the descriptor sanity checks (rank/dim
//                   arity) the interpreter must assume nothing about
//   verified-fast - VerifiedModule token, boundsCheck off: every check
//                   statically discharged, the trusted-run fast path
//   unverified    - raw module, boundsCheck off: the pre-verifier fast
//                   path, shown so verified-fast's "no slower than
//                   blind trust" claim is measured, not asserted
//
// Plus a one-time cost row: verifying the whole suite's bytecode.
//
// --json=FILE emits BENCH_vm.json with per-benchmark and suite-total
// rows so the trajectory is tracked across PRs.
#include "bench_common.h"

#include "support/metrics.h"
#include "vm/compile.h"
#include "vm/interp.h"
#include "vm/verifier.h"

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

using namespace paralift;
using namespace paralift::bench;

namespace {

constexpr int kScale = 8;
constexpr unsigned kThreads = 2;
constexpr int kReps = 7;

/// The Executor::run argument conversion, against an explicit Interp so
/// each trust configuration drives the same bytecode.
std::vector<vm::Slot> toSlots(vm::Interp &interp,
                              const std::vector<driver::Executor::Arg> &args) {
  std::vector<vm::Slot> slots;
  slots.reserve(args.size());
  for (const driver::Executor::Arg &a : args) {
    if (auto *i = std::get_if<int64_t>(&a)) {
      vm::Slot s;
      s.i = *i;
      slots.push_back(s);
    } else if (auto *f = std::get_if<double>(&a)) {
      vm::Slot s;
      s.f = *f;
      slots.push_back(s);
    } else {
      const auto &b = std::get<driver::Executor::Buffer>(a);
      slots.push_back(interp.makeMemRef(b.elem, b.data, b.dims));
    }
  }
  return slots;
}

struct BenchRow {
  std::string id;
  double checked = 0;
  double verifiedFast = 0;
  double unverified = 0;
};

struct VerifyCost {
  double wallSeconds = 0;
  uint64_t functions = 0;
  uint64_t errors = 0;
};

/// Times all three trust configurations with their reps interleaved
/// (rotating order each rep) so slow machine drift lands on every
/// configuration equally instead of biasing whichever was timed last.
void timeConfigs(const rodinia::Benchmark &b, vm::Interp *interps[3],
                 double out[3]) {
  std::vector<double> times[3];
  for (int r = 0; r < kReps; ++r) {
    for (int k = 0; k < 3; ++k) {
      int c = (r + k) % 3;
      rodinia::Workload w = b.makeWorkload(kScale);
      vm::Interp &in = *interps[c];
      std::vector<vm::Slot> slots = toSlots(in, w.args());
      double t0 = now();
      in.call("run", std::move(slots));
      times[c].push_back(now() - t0);
    }
  }
  for (int c = 0; c < 3; ++c) {
    std::sort(times[c].begin(), times[c].end());
    out[c] = times[c][times[c].size() / 2];
  }
}

} // namespace

int main(int argc, char **argv) {
  std::string jsonPath;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0)
      jsonPath = arg.substr(7);
  }

  // Compile the whole suite once (full pipeline, shared batch session,
  // no env cache) and lower each module to bytecode.
  SuiteSession suite = compileSuiteSession(transforms::PipelineOptions{});
  std::vector<std::optional<vm::BCModule>> bytecodes;
  for (driver::CompileJob *job : suite.jobs)
    bytecodes.push_back(job ? std::optional<vm::BCModule>(vm::compileModule(
                                  job->result().module.get()))
                            : std::nullopt);

  // One-time verification cost over the whole suite's bytecode.
  auto &reg = metrics::MetricsRegistry::instance();
  uint64_t fns0 = reg.counterValue("vm.verify.functions");
  uint64_t errs0 = reg.counterValue("vm.verify.errors");
  VerifyCost vc;
  vc.wallSeconds = medianTime(
      [&] {
        for (const auto &bc : bytecodes)
          if (bc) {
            vm::VerifyResult r = vm::verifyModule(*bc);
            if (!r.ok())
              std::fprintf(stderr, "UNEXPECTED verify failure:\n%s",
                           r.str().c_str());
          }
      },
      3);
  vc.functions = reg.counterValue("vm.verify.functions") - fns0;
  vc.errors = reg.counterValue("vm.verify.errors") - errs0;

  std::printf("=== Bytecode verification (one-time, whole suite x3) ===\n\n");
  std::printf("  verify wall      : %10.6f s (%llu function passes, "
              "%llu errors)\n",
              vc.wallSeconds, static_cast<unsigned long long>(vc.functions),
              static_cast<unsigned long long>(vc.errors));

  std::printf("\n=== Suite execution wall (seconds, scale=%d, threads=%u, "
              "median of %d) ===\n\n",
              kScale, kThreads, kReps);
  std::printf("%-28s%14s%16s%14s\n", "benchmark", "checked",
              "verified-fast", "unverified");

  std::vector<BenchRow> rows;
  double totChecked = 0, totVerified = 0, totUnverified = 0;
  size_t idx = 0;
  for (const auto &b : rodinia::suite()) {
    size_t i = idx++;
    if (!bytecodes[i])
      continue;
    const vm::BCModule &bc = *bytecodes[i];
    std::optional<vm::VerifiedModule> token = vm::VerifiedModule::create(bc);
    if (!token) {
      std::fprintf(stderr, "verify failed for %s; skipping\n", b.id.c_str());
      continue;
    }
    runtime::ThreadPool pool(std::max(kThreads, 8u));
    pool.setNumThreads(kThreads);

    vm::ExecOptions checkedOpts;
    checkedOpts.boundsCheck = true;
    vm::Interp checked(bc, pool, checkedOpts);
    vm::ExecOptions fastOpts;
    fastOpts.boundsCheck = false;
    vm::Interp verifiedFast(*token, pool, fastOpts);
    vm::Interp unverified(bc, pool, fastOpts);

    BenchRow row;
    row.id = b.id;
    vm::Interp *interps[3] = {&checked, &verifiedFast, &unverified};
    double t[3];
    timeConfigs(b, interps, t);
    row.checked = t[0];
    row.verifiedFast = t[1];
    row.unverified = t[2];
    totChecked += row.checked;
    totVerified += row.verifiedFast;
    totUnverified += row.unverified;
    std::printf("%-28s%14.6f%16.6f%14.6f\n", b.id.c_str(), row.checked,
                row.verifiedFast, row.unverified);
    rows.push_back(std::move(row));
  }
  std::printf("%-28s%14.6f%16.6f%14.6f\n", "TOTAL", totChecked, totVerified,
              totUnverified);
  std::printf("\n  checked / verified-fast : %.3fx\n",
              totVerified > 0 ? totChecked / totVerified : 0.0);
  std::printf("  unverified / verified-fast : %.3fx (1.0 = proof costs "
              "nothing at run time)\n",
              totVerified > 0 ? totUnverified / totVerified : 0.0);

  if (!jsonPath.empty()) {
    std::FILE *f = std::fopen(jsonPath.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench_vm: cannot write '%s'\n", jsonPath.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"vm\",\n");
    std::fprintf(f, "  \"suite\": \"rodinia\",\n");
    std::fprintf(f, "  \"modules\": %zu,\n", rodinia::suite().size());
    std::fprintf(f, "  \"scale\": %d,\n", kScale);
    std::fprintf(f, "  \"threads\": %u,\n", kThreads);
    std::fprintf(f,
                 "  \"verify\": {\"wall_s\": %.6f, \"functions\": %llu, "
                 "\"errors\": %llu},\n",
                 vc.wallSeconds,
                 static_cast<unsigned long long>(vc.functions),
                 static_cast<unsigned long long>(vc.errors));
    std::fprintf(f, "  \"execution\": [\n");
    for (size_t i = 0; i < rows.size(); ++i)
      std::fprintf(f,
                   "    {\"benchmark\": \"%s\", \"checked_s\": %.6f, "
                   "\"verified_fast_s\": %.6f, \"unverified_s\": %.6f}%s\n",
                   rows[i].id.c_str(), rows[i].checked, rows[i].verifiedFast,
                   rows[i].unverified, i + 1 < rows.size() ? "," : "");
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"suite_total\": {\"checked_s\": %.6f, "
                 "\"verified_fast_s\": %.6f, \"unverified_s\": %.6f, "
                 "\"checked_over_verified_fast\": %.3f, "
                 "\"unverified_over_verified_fast\": %.3f}\n",
                 totChecked, totVerified, totUnverified,
                 totVerified > 0 ? totChecked / totVerified : 0.0,
                 totVerified > 0 ? totUnverified / totVerified : 0.0);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", jsonPath.c_str());
  }
  return 0;
}
