// Fig. 12 reproduction: matrix multiplication transpiled by MCUDA-mode
// vs PolygeistInnerPar vs PolygeistInnerSer, as a function of thread
// count (left panel) and matrix size (right panel). The paper's findings:
// InnerPar ~= MCUDA (within ~1.3%), InnerSer faster than both (~15%).
#include "bench_common.h"

#include <benchmark/benchmark.h>

using namespace paralift;
using namespace paralift::bench;

namespace {

// Shared-memory tiled matmul: the nested grid/block structure with
// barriers that distinguishes the three pipelines.
const char *kMatmulSrc = R"(
#define TILE 8
__global__ void matmul(float* C, float* A, float* B, int n) {
  __shared__ float As[TILE][TILE];
  __shared__ float Bs[TILE][TILE];
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int row = blockIdx.y * TILE + ty;
  int col = blockIdx.x * TILE + tx;
  float acc = 0.0f;
  for (int t = 0; t < n / TILE; t++) {
    As[ty][tx] = A[row * n + t * TILE + tx];
    Bs[ty][tx] = B[(t * TILE + ty) * n + col];
    __syncthreads();
    for (int k = 0; k < TILE; k++) {
      acc += As[ty][k] * Bs[k][tx];
    }
    __syncthreads();
  }
  C[row * n + col] = acc;
}
void run(float* C, float* A, float* B, int n) {
  int g = n / TILE;
  matmul<<<dim3(g, g), dim3(TILE, TILE)>>>(C, A, B, n);
}
)";

struct Variant {
  const char *name;
  transforms::PipelineOptions opts;
  runtime::NestedPolicy nested;
};

std::vector<Variant> variants() {
  transforms::PipelineOptions innerPar;
  innerPar.innerSerialize = false;
  transforms::PipelineOptions innerSer;
  return {
      {"MCUDA", transforms::PipelineOptions::mcuda(),
       runtime::NestedPolicy::Serialize},
      {"PolygeistInnerPar", innerPar, runtime::NestedPolicy::Spawn},
      {"PolygeistInnerSer", innerSer, runtime::NestedPolicy::Serialize},
  };
}

double timeMatmul(ir::ModuleOp module, const Variant &v, int n,
                  unsigned threads) {
  driver::Executor exec(module, 8, /*boundsCheck=*/false);
  exec.setNumThreads(threads);
  exec.setNestedPolicy(v.nested);
  std::vector<float> A(static_cast<size_t>(n) * n, 1.0f),
      B(static_cast<size_t>(n) * n, 0.5f), C(static_cast<size_t>(n) * n);
  return medianTime([&] {
    exec.run("run", {driver::Executor::bufferF32(C.data(), {n * n}),
                     driver::Executor::bufferF32(A.data(), {n * n}),
                     driver::Executor::bufferF32(B.data(), {n * n}),
                     int64_t(n)});
  });
}

/// All three pipeline variants compiled as one session batch (three
/// jobs, three pipeline groups) instead of recompiling per table cell.
std::vector<driver::CompileJob *>
compileVariants(driver::CompilerSession &session) {
  std::vector<driver::CompileJob *> jobs;
  for (const Variant &v : variants())
    jobs.push_back(&session.addSource(v.name, kMatmulSrc, v.opts));
  session.compileAll();
  for (driver::CompileJob *job : jobs)
    if (!job->ok())
      std::fprintf(stderr, "%s failed:\n%s\n", job->name().c_str(),
                   job->diagnostics().str().c_str());
  return jobs;
}

void printTables() {
  driver::CompilerSession session = makeSuiteSession(/*threads=*/2);
  std::vector<driver::CompileJob *> compiled = compileVariants(session);
  for (driver::CompileJob *job : compiled)
    if (!job->ok())
      return; // failures already reported by compileVariants
  auto moduleOf = [&](size_t vi) {
    return compiled[vi]->result().module.get();
  };
  std::printf("\n=== Fig. 12: matmul, MCUDA vs PolygeistInnerPar vs "
              "PolygeistInnerSer ===\n");
  std::printf("(interpreter-scale runtimes; hardware: %u cores)\n\n",
              std::thread::hardware_concurrency());
  const std::vector<unsigned> threadCounts = {1, 2, 4, 8};
  const int fixedSize = 64;
  std::printf("Left panel: runtime (s) vs threads at n=%d\n", fixedSize);
  std::printf("%-20s", "threads");
  for (unsigned t : threadCounts)
    std::printf("%10u", t);
  std::printf("\n");
  std::vector<std::vector<double>> byVariant;
  std::vector<Variant> vs = variants();
  for (size_t vi = 0; vi < vs.size(); ++vi) {
    std::printf("%-20s", vs[vi].name);
    std::vector<double> row;
    for (unsigned t : threadCounts) {
      double s = timeMatmul(moduleOf(vi), vs[vi], fixedSize, t);
      row.push_back(s);
      std::printf("%10.4f", s);
    }
    byVariant.push_back(row);
    std::printf("\n");
  }
  std::printf("\nRight panel: runtime (s) vs matrix size at 2 threads\n");
  const std::vector<int> sizes = {32, 64, 96, 128};
  std::printf("%-20s", "size");
  for (int n : sizes)
    std::printf("%10d", n);
  std::printf("\n");
  std::vector<double> serSpeedups, parSpeedups;
  for (size_t vi = 0; vi < vs.size(); ++vi) {
    std::printf("%-20s", vs[vi].name);
    for (int n : sizes)
      std::printf("%10.4f", timeMatmul(moduleOf(vi), vs[vi], n, 2));
    std::printf("\n");
  }
  // Summary lines mirroring §VI-A.
  for (size_t t = 0; t < threadCounts.size(); ++t) {
    parSpeedups.push_back(byVariant[0][t] / byVariant[1][t]);
    serSpeedups.push_back(byVariant[0][t] / byVariant[2][t]);
  }
  std::printf("\nSummary (paper: InnerPar within ~1.3%% of MCUDA; InnerSer "
              "~14.9%% faster):\n");
  std::printf("  PolygeistInnerPar speedup over MCUDA (geomean): %.3fx\n",
              geomean(parSpeedups));
  std::printf("  PolygeistInnerSer speedup over MCUDA (geomean): %.3fx\n",
              geomean(serSpeedups));
}

void BM_MatmulInnerSer(benchmark::State &state) {
  Variant v = variants()[2];
  DiagnosticEngine diag;
  auto cc = driver::compile(kMatmulSrc, v.opts, diag);
  if (!cc.ok) {
    state.SkipWithError(("compile failed: " + diag.str()).c_str());
    return;
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(timeMatmul(cc.module.get(), v, 32, 2));
}
BENCHMARK(BM_MatmulInnerSer)->Iterations(1)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printTables();
  return 0;
}
