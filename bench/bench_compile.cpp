// Supporting table: compilation-time cost of each pipeline stage across
// the Rodinia suite (not a paper figure; quantifies the compiler itself).
#include "bench_common.h"

#include <benchmark/benchmark.h>

using namespace paralift;
using namespace paralift::bench;

namespace {

double timeCompile(const rodinia::Benchmark &b,
                   const transforms::PipelineOptions &opts) {
  return medianTime(
      [&] {
        DiagnosticEngine diag;
        auto cc = driver::compile(b.cudaSource, opts, diag);
        benchmark::DoNotOptimize(cc.ok);
      },
      3);
}

void printTable() {
  std::printf("\n=== Compile time per benchmark (seconds) ===\n\n");
  std::printf("%-28s%12s%12s%12s\n", "benchmark", "full", "optdis",
              "mcuda");
  for (const auto &b : rodinia::suite()) {
    transforms::PipelineOptions full;
    std::printf("%-28s%12.4f%12.4f%12.4f\n", b.name.c_str(),
                timeCompile(b, full),
                timeCompile(b, transforms::PipelineOptions::optDisabled()),
                timeCompile(b, transforms::PipelineOptions::mcuda()));
  }
}

void BM_CompileBackprop(benchmark::State &state) {
  const auto *b = rodinia::find("backprop_layerforward");
  transforms::PipelineOptions opts;
  for (auto _ : state) {
    DiagnosticEngine diag;
    auto cc = driver::compile(b->cudaSource, opts, diag);
    benchmark::DoNotOptimize(cc.ok);
  }
}
BENCHMARK(BM_CompileBackprop)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printTable();
  return 0;
}
