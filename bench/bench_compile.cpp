// Supporting table: compilation-time cost of each pipeline stage across
// the Rodinia suite (not a paper figure; quantifies the compiler itself).
//
// --json=FILE additionally emits a machine-readable BENCH_compile.json
// (suite latency per scheduler and thread count, mean/median/p95
// job-completion latency, keying time, arena parse/clone/teardown cost,
// cache stats, tracing-disabled vs -enabled overhead, failpoint
// disarmed vs armed-inert overhead, and a MetricsRegistry snapshot) so
// the perf trajectory is tracked across PRs.
#include "bench_common.h"

#include "ir/parser.h"
#include "support/failpoint.h"
#include "support/metrics.h"
#include "support/trace.h"

#include <benchmark/benchmark.h>

using namespace paralift;
using namespace paralift::bench;

namespace {

double timeCompile(const rodinia::Benchmark &b,
                   const transforms::PipelineOptions &opts) {
  return medianTime(
      [&] {
        DiagnosticEngine diag;
        auto cc = driver::compile(b.cudaSource, opts, diag);
        benchmark::DoNotOptimize(cc.ok);
      },
      3);
}

void printTable() {
  std::printf("\n=== Compile time per benchmark (seconds) ===\n\n");
  std::printf("%-28s%12s%12s%12s\n", "benchmark", "full", "optdis",
              "mcuda");
  for (const auto &b : rodinia::suite()) {
    transforms::PipelineOptions full;
    std::printf("%-28s%12.4f%12.4f%12.4f\n", b.name.c_str(),
                timeCompile(b, full),
                timeCompile(b, transforms::PipelineOptions::optDisabled()),
                timeCompile(b, transforms::PipelineOptions::mcuda()));
  }
}

/// Per-pass compile-time breakdown across the suite for the full
/// pipeline, plus the effect of parallel per-kernel pass scheduling.
void printPassBreakdown() {
  std::printf("\n=== Per-pass compile time, full pipeline (seconds, summed "
              "over suite) ===\n\n");
  timeSuiteCompiles(transforms::PipelineOptions{}).print();

  std::printf("\n=== Compile throughput vs --pm-threads, serial per-module "
              "(whole suite, seconds) ===\n\n");
  for (unsigned threads : {1u, 2u, 4u}) {
    double t = medianTime(
        [&] {
          for (const auto &b : rodinia::suite()) {
            DiagnosticEngine diag;
            transforms::PassRunConfig config;
            config.threads = threads;
            auto cc = driver::compile(b.cudaSource,
                                      transforms::PipelineOptions{}, diag,
                                      config);
            benchmark::DoNotOptimize(cc.ok);
          }
        },
        3);
    std::printf("  pm-threads=%u  %10.4f s\n", threads, t);
  }
}

/// One measured batch compile of the whole suite through a session.
struct SchedulerMeasurement {
  double wallSeconds = 0;      ///< compileAll wall clock
  double meanJobSeconds = 0;   ///< mean CompileJob-completion latency
  double medianJobSeconds = 0; ///< median CompileJob-completion latency
  double p95JobSeconds = 0;    ///< p95 CompileJob-completion latency
};

/// p95 by the nearest-rank method on a sorted sample.
double p95Of(const std::vector<double> &sorted) {
  if (sorted.empty())
    return 0;
  size_t rank = static_cast<size_t>(
      std::ceil(0.95 * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size(), std::max<size_t>(rank, 1)) - 1];
}

SchedulerMeasurement measureSuiteSession(unsigned threads,
                                         driver::ScheduleMode schedule,
                                         int reps = 7) {
  std::vector<SchedulerMeasurement> ms;
  for (int r = 0; r < reps; ++r) {
    driver::SessionOptions so = suiteSessionOptions(threads);
    so.schedule = schedule;
    driver::CompilerSession session(std::move(so));
    std::vector<driver::CompileJob *> jobs;
    for (const auto &b : rodinia::suite())
      jobs.push_back(&session.addSource(b.id, b.cudaSource,
                                        transforms::PipelineOptions{}));
    double t0 = now();
    benchmark::DoNotOptimize(session.compileAll());
    SchedulerMeasurement m;
    m.wallSeconds = now() - t0;
    std::vector<double> lats;
    for (driver::CompileJob *job : jobs)
      lats.push_back(job->latencySeconds());
    std::sort(lats.begin(), lats.end());
    for (double l : lats)
      m.meanJobSeconds += l;
    m.meanJobSeconds /= lats.empty() ? 1 : lats.size();
    m.medianJobSeconds = lats.empty() ? 0 : lats[lats.size() / 2];
    m.p95JobSeconds = p95Of(lats);
    ms.push_back(m);
  }
  // Median rep by wall clock.
  std::sort(ms.begin(), ms.end(),
            [](const SchedulerMeasurement &a, const SchedulerMeasurement &b) {
              return a.wallSeconds < b.wallSeconds;
            });
  return ms[ms.size() / 2];
}

struct SchedulerRow {
  unsigned threads;
  SchedulerMeasurement dag, lockstep;
};

/// Suite-session mode: the whole Rodinia suite queued on one
/// CompilerSession. The table compares the dependency-DAG scheduler
/// (parse/keying/pass steps overlap across modules; each CompileJob
/// future resolves the moment its module's last pass lands) against the
/// lockstep executor (global per-pass barriers, futures resolve at end
/// of batch) — batch wall clock AND job-completion latency, the two
/// numbers the DAG is built to shrink. A serial one-shot baseline
/// anchors both.
std::vector<SchedulerRow> printSuiteSessionMode() {
  std::printf("\n=== Suite-session batch compile: DAG vs lockstep "
              "scheduling (whole suite, seconds) ===\n");
  std::printf("(hardware: %u cores; wall-clock wins need >1 — job-latency "
              "wins appear even on 1 — see EXPERIMENTS.md)\n\n",
              std::thread::hardware_concurrency());
  // The serial baseline goes through one-shot sessions rather than
  // driver::compile so every mode ignores $PARALIFT_CACHE_DIR — the
  // comparison must measure scheduling, not an env cache warming one
  // side.
  double serial = medianTime(
      [&] {
        for (const auto &b : rodinia::suite()) {
          driver::CompilerSession session = makeSuiteSession();
          auto &job = session.addSource(b.id, b.cudaSource,
                                        transforms::PipelineOptions{});
          session.compileAll();
          benchmark::DoNotOptimize(job.ok());
        }
      },
      3);
  std::printf("  serial per-module (one-shot sessions)  %10.4f s\n\n",
              serial);
  std::printf("  %-12s%12s%12s%14s%14s%14s\n", "pm-threads", "wall",
              "vs-lock", "mean-job", "median-job", "p95-job");
  std::vector<SchedulerRow> rows;
  for (unsigned threads : {1u, 2u, 4u}) {
    SchedulerRow row;
    row.threads = threads;
    row.dag = measureSuiteSession(threads, driver::ScheduleMode::Dag);
    row.lockstep =
        measureSuiteSession(threads, driver::ScheduleMode::Lockstep);
    std::printf("  dag=%-8u%10.4f s%11.2fx%12.4f s%12.4f s%12.4f s\n",
                threads, row.dag.wallSeconds,
                row.dag.wallSeconds > 0
                    ? row.lockstep.wallSeconds / row.dag.wallSeconds
                    : 0.0,
                row.dag.meanJobSeconds, row.dag.medianJobSeconds,
                row.dag.p95JobSeconds);
    std::printf("  lock=%-7u%10.4f s%12s%12.4f s%12.4f s%12.4f s\n",
                threads, row.lockstep.wallSeconds, "-",
                row.lockstep.meanJobSeconds, row.lockstep.medianJobSeconds,
                row.lockstep.p95JobSeconds);
    rows.push_back(row);
  }
  return rows;
}

/// IR-memory cost across the suite: parse (textual IR -> arena-backed
/// module), clone (cloneModule into a fresh arena), and teardown
/// (OwnedModule destruction, which is an O(1)-per-module slab release).
/// These are the three paths the per-module arena is built to speed up;
/// the rows land in BENCH_compile.json so the trajectory is tracked
/// across PRs.
struct IrMemoryTimes {
  double parseSeconds = 0;
  double cloneSeconds = 0;
  double teardownSeconds = 0;
  size_t modules = 0; ///< valid suite modules per round
  int rounds = 0;
};

IrMemoryTimes measureIrMemory(const SuiteModules &suite, int rounds = 20,
                              int reps = 3) {
  IrMemoryTimes out;
  out.rounds = rounds;
  std::vector<std::string> texts;
  for (size_t i = 0; i < suite.modules.size(); ++i)
    if (suite.isValid(i))
      texts.push_back(ir::printOp(suite.modules[i].get().op));
  out.modules = texts.size();
  std::vector<double> parseT, cloneT, tearT;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<ir::OwnedModule> parsed;
    parsed.reserve(texts.size() * rounds);
    double t0 = now();
    for (int r = 0; r < rounds; ++r)
      for (const std::string &text : texts) {
        DiagnosticEngine diag;
        auto m = ir::parseModule(text, diag);
        if (m)
          parsed.push_back(std::move(*m));
      }
    parseT.push_back(now() - t0);

    std::vector<ir::OwnedModule> clones;
    clones.reserve(parsed.size());
    t0 = now();
    for (ir::OwnedModule &m : parsed)
      clones.push_back(ir::cloneModule(m.get()));
    cloneT.push_back(now() - t0);

    t0 = now();
    parsed.clear();
    clones.clear();
    tearT.push_back(now() - t0);
  }
  auto med = [](std::vector<double> &v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  out.parseSeconds = med(parseT);
  out.cloneSeconds = med(cloneT);
  out.teardownSeconds = med(tearT);
  return out;
}

void printIrMemory(const IrMemoryTimes &m) {
  std::printf("\n=== IR-memory cost, whole suite x%d (arena-backed "
              "parse/clone/teardown) ===\n\n",
              m.rounds);
  std::printf("  parse    : %10.6f s  (%zu modules x%d)\n", m.parseSeconds,
              m.modules, m.rounds);
  std::printf("  clone    : %10.6f s\n", m.cloneSeconds);
  std::printf("  teardown : %10.6f s  (parse+clone modules, slab release)\n",
              m.teardownSeconds);
}

/// Wall clock of one 4-thread DAG suite batch with the trace recorder
/// off vs on. The disabled row is the always-on cost of the
/// instrumentation (one relaxed atomic load per site — must stay within
/// noise of the pre-observability baseline); the enabled row adds the
/// per-event recording cost.
struct TracingOverhead {
  double disabledWall = 0;
  double enabledWall = 0;
  double overheadPct = 0;
};

TracingOverhead measureTracingOverhead() {
  // Interleaved paired reps: the suite batch is tens of milliseconds,
  // so a single sample is dominated by scheduling noise, not the
  // tracing branch. Each rep measures both arms back to back and the
  // overhead is the median of the per-rep ratios — pairing cancels
  // machine drift that would bias a min-vs-min comparison.
  constexpr int kReps = 7;
  TracingOverhead t;
  t.disabledWall = std::numeric_limits<double>::infinity();
  t.enabledWall = std::numeric_limits<double>::infinity();
  std::vector<double> ratios;
  for (int i = 0; i < kReps; ++i) {
    double off = measureSuiteSession(4, driver::ScheduleMode::Dag).wallSeconds;
    trace::enable();
    double on = measureSuiteSession(4, driver::ScheduleMode::Dag).wallSeconds;
    trace::disable();
    t.disabledWall = std::min(t.disabledWall, off);
    t.enabledWall = std::min(t.enabledWall, on);
    if (off > 0)
      ratios.push_back(on / off);
  }
  if (!ratios.empty()) {
    std::sort(ratios.begin(), ratios.end());
    t.overheadPct = 100.0 * (ratios[ratios.size() / 2] - 1.0);
  }
  return t;
}

void printTracingOverhead(const TracingOverhead &t) {
  std::printf("\n=== Tracing overhead (4-thread DAG suite batch) ===\n\n");
  std::printf("  tracing disabled : %10.4f s\n", t.disabledWall);
  std::printf("  tracing enabled  : %10.4f s  (%+.1f%% median paired)\n",
              t.enabledWall, t.overheadPct);
}

/// Wall clock of one 4-thread DAG suite batch with failpoints disarmed
/// (the default: every site is one relaxed atomic load) vs armed with
/// an inert spec (probability-0 trigger on the hottest site, so the
/// slow-path site lookup runs on every pass but no fault ever fires).
/// The disarmed arm is the always-on cost of the instrumentation and
/// must stay within noise of a build without it.
struct FailpointOverhead {
  double disarmedWall = 0;
  double armedWall = 0;
  double overheadPct = 0;
};

FailpointOverhead measureFailpointOverhead() {
  // Same paired-rep methodology as measureTracingOverhead: median of
  // per-rep ratios cancels machine drift.
  constexpr int kReps = 7;
  FailpointOverhead t;
  t.disarmedWall = std::numeric_limits<double>::infinity();
  t.armedWall = std::numeric_limits<double>::infinity();
  std::vector<double> ratios;
  for (int i = 0; i < kReps; ++i) {
    failpoint::clearAll();
    double off = measureSuiteSession(4, driver::ScheduleMode::Dag).wallSeconds;
    std::string err;
    if (!failpoint::configure("pass.run=error:0,0.0", &err)) {
      std::fprintf(stderr, "bench_compile: failpoint spec rejected: %s\n",
                   err.c_str());
      break;
    }
    double on = measureSuiteSession(4, driver::ScheduleMode::Dag).wallSeconds;
    failpoint::clearAll();
    t.disarmedWall = std::min(t.disarmedWall, off);
    t.armedWall = std::min(t.armedWall, on);
    if (off > 0)
      ratios.push_back(on / off);
  }
  if (!ratios.empty()) {
    std::sort(ratios.begin(), ratios.end());
    t.overheadPct = 100.0 * (ratios[ratios.size() / 2] - 1.0);
  }
  return t;
}

void printFailpointOverhead(const FailpointOverhead &t) {
  std::printf("\n=== Failpoint overhead (4-thread DAG suite batch) ===\n\n");
  std::printf("  failpoints disarmed    : %10.4f s\n", t.disarmedWall);
  std::printf("  armed, inert spec      : %10.4f s  (%+.1f%% median paired)\n",
              t.armedWall, t.overheadPct);
}

/// Cold-populate cache behavior of one DAG suite batch (hits include
/// in-batch dedup of kernels shared across modules).
transforms::PassResultCache::StatsSnapshot measureCacheStats() {
  transforms::PassResultCache cache;
  driver::CompilerSession session = makeSuiteSession(4, &cache);
  for (const auto &b : rodinia::suite())
    session.addSource(b.id, b.cudaSource, transforms::PipelineOptions{});
  session.compileAll();
  return cache.stats();
}

void writeJson(const std::string &path,
               const std::vector<SchedulerRow> &rows, const KeyingTimes &k,
               const IrMemoryTimes &im,
               const transforms::PassResultCache::StatsSnapshot &cs,
               const TracingOverhead &to, const FailpointOverhead &fo) {
  std::FILE *f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_compile: cannot write '%s'\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"compile\",\n");
  std::fprintf(f, "  \"suite\": \"rodinia\",\n");
  std::fprintf(f, "  \"modules\": %zu,\n", rodinia::suite().size());
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"scheduler_default\": \"dag\",\n");
  std::fprintf(f, "  \"suite_session\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const SchedulerRow &r = rows[i];
    auto emit = [&](const char *name, const SchedulerMeasurement &m,
                    const char *sep) {
      std::fprintf(f,
                   "      \"%s\": {\"wall_s\": %.6f, \"mean_job_s\": %.6f, "
                   "\"median_job_s\": %.6f, \"p95_job_s\": %.6f}%s\n",
                   name, m.wallSeconds, m.meanJobSeconds, m.medianJobSeconds,
                   m.p95JobSeconds, sep);
    };
    std::fprintf(f, "    {\n      \"pm_threads\": %u,\n", r.threads);
    emit("dag", r.dag, ",");
    emit("lockstep", r.lockstep, ",");
    std::fprintf(
        f, "      \"speedup_wall\": %.3f,\n      \"speedup_mean_job\": %.3f\n",
        r.dag.wallSeconds > 0 ? r.lockstep.wallSeconds / r.dag.wallSeconds
                              : 0.0,
        r.dag.meanJobSeconds > 0
            ? r.lockstep.meanJobSeconds / r.dag.meanJobSeconds
            : 0.0);
    std::fprintf(f, "    }%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"keying\": {\"structural_s\": %.6f, \"printed_hash_s\": "
               "%.6f, \"funcs\": %zu, \"rounds\": %d},\n",
               k.structuralSeconds, k.printedSeconds, k.funcs, k.rounds);
  std::fprintf(f,
               "  \"ir_memory\": {\"parse_s\": %.6f, \"clone_s\": %.6f, "
               "\"teardown_s\": %.6f, \"modules\": %zu, \"rounds\": %d},\n",
               im.parseSeconds, im.cloneSeconds, im.teardownSeconds,
               im.modules, im.rounds);
  std::fprintf(f,
               "  \"cache_cold_populate\": {\"hits\": %llu, \"misses\": "
               "%llu, \"stores\": %llu, \"passes_executed\": %llu, "
               "\"passes_replayed\": %llu, \"waits\": %llu},\n",
               static_cast<unsigned long long>(cs.hits),
               static_cast<unsigned long long>(cs.misses),
               static_cast<unsigned long long>(cs.stores),
               static_cast<unsigned long long>(cs.passesExecuted),
               static_cast<unsigned long long>(cs.passesReplayed),
               static_cast<unsigned long long>(cs.waits));
  std::fprintf(f,
               "  \"tracing\": {\"disabled_wall_s\": %.6f, "
               "\"enabled_wall_s\": %.6f, \"enabled_overhead_pct\": %.2f},\n",
               to.disabledWall, to.enabledWall, to.overheadPct);
  std::fprintf(f,
               "  \"failpoints\": {\"disarmed_wall_s\": %.6f, "
               "\"armed_inert_wall_s\": %.6f, "
               "\"armed_overhead_pct\": %.2f},\n",
               fo.disarmedWall, fo.armedWall, fo.overheadPct);
  // Process-wide registry snapshot over everything this run compiled:
  // the trajectory of scheduler/cache/arena activity across PRs.
  const auto &reg = metrics::MetricsRegistry::instance();
  std::fprintf(f,
               "  \"metrics\": {\"cache_hits\": %llu, "
               "\"scheduler_tasks\": %llu, \"scheduler_steals\": %llu, "
               "\"session_jobs_completed\": %llu, "
               "\"arena_peak_bytes\": %lld}\n",
               static_cast<unsigned long long>(reg.counterValue("cache.hits")),
               static_cast<unsigned long long>(
                   reg.counterValue("scheduler.tasks")),
               static_cast<unsigned long long>(
                   reg.counterValue("scheduler.steals")),
               static_cast<unsigned long long>(
                   reg.counterValue("session.jobs_completed")),
               static_cast<long long>(reg.gaugePeak("arena.reserved_bytes")));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

void BM_CompileBackprop(benchmark::State &state) {
  const auto *b = rodinia::find("backprop_layerforward");
  transforms::PipelineOptions opts;
  for (auto _ : state) {
    DiagnosticEngine diag;
    auto cc = driver::compile(b->cudaSource, opts, diag);
    benchmark::DoNotOptimize(cc.ok);
  }
}
BENCHMARK(BM_CompileBackprop)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  // Strip --json=FILE before google-benchmark sees (and rejects) it.
  std::string jsonPath;
  {
    int w = 1;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--json=", 0) == 0)
        jsonPath = arg.substr(7);
      else
        argv[w++] = argv[i];
    }
    argc = w;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printTable();
  printPassBreakdown();
  std::vector<SchedulerRow> rows = printSuiteSessionMode();
  SuiteModules suite = parseSuiteModules();
  KeyingTimes keying = measureKeyingTime(suite);
  printKeyingTime(keying);
  IrMemoryTimes irMem = measureIrMemory(suite);
  printIrMemory(irMem);
  TracingOverhead tracing = measureTracingOverhead();
  printTracingOverhead(tracing);
  FailpointOverhead failpoints = measureFailpointOverhead();
  printFailpointOverhead(failpoints);
  if (!jsonPath.empty())
    writeJson(jsonPath, rows, keying, irMem, measureCacheStats(), tracing,
              failpoints);
  return 0;
}
