// Supporting table: compilation-time cost of each pipeline stage across
// the Rodinia suite (not a paper figure; quantifies the compiler itself).
#include "bench_common.h"

#include <benchmark/benchmark.h>

using namespace paralift;
using namespace paralift::bench;

namespace {

double timeCompile(const rodinia::Benchmark &b,
                   const transforms::PipelineOptions &opts) {
  return medianTime(
      [&] {
        DiagnosticEngine diag;
        auto cc = driver::compile(b.cudaSource, opts, diag);
        benchmark::DoNotOptimize(cc.ok);
      },
      3);
}

void printTable() {
  std::printf("\n=== Compile time per benchmark (seconds) ===\n\n");
  std::printf("%-28s%12s%12s%12s\n", "benchmark", "full", "optdis",
              "mcuda");
  for (const auto &b : rodinia::suite()) {
    transforms::PipelineOptions full;
    std::printf("%-28s%12.4f%12.4f%12.4f\n", b.name.c_str(),
                timeCompile(b, full),
                timeCompile(b, transforms::PipelineOptions::optDisabled()),
                timeCompile(b, transforms::PipelineOptions::mcuda()));
  }
}

/// Per-pass compile-time breakdown across the suite for the full
/// pipeline, plus the effect of parallel per-kernel pass scheduling.
void printPassBreakdown() {
  std::printf("\n=== Per-pass compile time, full pipeline (seconds, summed "
              "over suite) ===\n\n");
  timeSuiteCompiles(transforms::PipelineOptions{}).print();

  std::printf("\n=== Compile throughput vs --pm-threads, serial per-module "
              "(whole suite, seconds) ===\n\n");
  for (unsigned threads : {1u, 2u, 4u}) {
    double t = medianTime(
        [&] {
          for (const auto &b : rodinia::suite()) {
            DiagnosticEngine diag;
            transforms::PassRunConfig config;
            config.threads = threads;
            auto cc = driver::compile(b.cudaSource,
                                      transforms::PipelineOptions{}, diag,
                                      config);
            benchmark::DoNotOptimize(cc.ok);
          }
        },
        3);
    std::printf("  pm-threads=%u  %10.4f s\n", threads, t);
  }
}

/// Suite-session mode: the whole Rodinia suite queued on one
/// CompilerSession, so every module's function passes schedule across
/// one shared pool (and one pool startup) instead of 1-2 kernels per
/// compile starving the workers. The speedup over the serial per-module
/// facade is the batch win the per-module sweep above cannot show.
void printSuiteSessionMode() {
  std::printf("\n=== Suite-session batch compile vs serial per-module "
              "(whole suite, seconds) ===\n");
  std::printf("(hardware: %u cores; batch scheduling needs >1 to win — "
              "see EXPERIMENTS.md)\n\n",
              std::thread::hardware_concurrency());
  // The serial baseline goes through one-shot sessions rather than
  // driver::compile so both sides ignore $PARALIFT_CACHE_DIR — the
  // comparison must measure scheduling, not an env cache warming one
  // side.
  double serial = medianTime(
      [&] {
        for (const auto &b : rodinia::suite()) {
          driver::CompilerSession session = makeSuiteSession();
          auto &job = session.addSource(b.id, b.cudaSource,
                                        transforms::PipelineOptions{});
          session.compileAll();
          benchmark::DoNotOptimize(job.ok());
        }
      },
      3);
  std::printf("  serial per-module (one-shot sessions)  %10.4f s\n", serial);
  for (unsigned threads : {1u, 2u, 4u}) {
    double t = medianTime(
        [&] {
          driver::CompilerSession session = makeSuiteSession(threads);
          for (const auto &b : rodinia::suite())
            session.addSource(b.id, b.cudaSource,
                              transforms::PipelineOptions{});
          benchmark::DoNotOptimize(session.compileAll());
        },
        3);
    std::printf("  session batch pm-threads=%u           %10.4f s  "
                "(%.2fx vs serial)\n",
                threads, t, t > 0 ? serial / t : 0.0);
  }
}

void BM_CompileBackprop(benchmark::State &state) {
  const auto *b = rodinia::find("backprop_layerforward");
  transforms::PipelineOptions opts;
  for (auto _ : state) {
    DiagnosticEngine diag;
    auto cc = driver::compile(b->cudaSource, opts, diag);
    benchmark::DoNotOptimize(cc.ok);
  }
}
BENCHMARK(BM_CompileBackprop)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printTable();
  printPassBreakdown();
  printSuiteSessionMode();
  printKeyingTime(parseSuiteModules());
  return 0;
}
