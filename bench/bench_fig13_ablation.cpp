// Fig. 13 (left) reproduction: per-benchmark speedup over the
// unoptimized ("Opt Disabled") transpilation as the paper's optimization
// axes are enabled cumulatively: mincut, openmpopt, affine, innerser.
// Benchmarks containing barriers are marked with '*'.
#include "bench_common.h"

#include <benchmark/benchmark.h>

using namespace paralift;
using namespace paralift::bench;

namespace {

struct Stage {
  const char *name;
  transforms::PipelineOptions opts;
};

std::vector<Stage> stages() {
  using transforms::PipelineOptions;
  std::vector<Stage> out;
  PipelineOptions disabled = PipelineOptions::optDisabled();
  out.push_back({"OptDisabled", disabled});
  PipelineOptions mincut = disabled;
  mincut.minCut = true;
  out.push_back({"+mincut", mincut});
  // Barrier motion is our extra axis (the paper folds motion into the
  // §IV-A discussion); it further shrinks the fission caches min-cut
  // sizes.
  PipelineOptions motion = mincut;
  motion.barrierMotion = true;
  out.push_back({"+motion", motion});
  PipelineOptions openmp = motion;
  openmp.openmpOpt = true;
  out.push_back({"+openmpopt", openmp});
  PipelineOptions affine = openmp;
  affine.affineOpts = true;
  out.push_back({"+affine", affine});
  PipelineOptions innerser = affine;
  innerser.innerSerialize = true;
  out.push_back({"+innerser", innerser});
  return out;
}

void printTable(const SuiteModules &suite) {
  std::printf("\n=== Fig. 13 (left): ablation, speedup over OptDisabled "
              "===\n\n");
  std::printf("%-28s", "benchmark");
  for (const Stage &s : stages())
    std::printf("%12s", s.name);
  std::printf("\n");

  // One batch session per ablation stage: the whole suite's pre-parsed
  // modules (cloned once each) compile together through one pool.
  std::vector<Stage> sts = stages();
  std::vector<std::unique_ptr<driver::CompilerSession>> sessions;
  std::vector<std::vector<driver::CompileJob *>> jobs(sts.size());
  for (size_t si = 0; si < sts.size(); ++si) {
    auto session = std::make_unique<driver::CompilerSession>(
        suiteSessionOptions(/*threads=*/2));
    size_t bi = 0;
    for (const auto &b : rodinia::suite()) {
      size_t i = bi++;
      if (!suite.isValid(i)) {
        jobs[si].push_back(nullptr);
        continue;
      }
      jobs[si].push_back(&session->addModule(
          b.id, ir::cloneModule(suite.modules[i].get()), sts[si].opts));
    }
    session->compileAll();
    sessions.push_back(std::move(session));
  }

  std::vector<std::vector<double>> speedups(sts.size());
  size_t bi = 0;
  for (const auto &b : rodinia::suite()) {
    size_t i = bi++;
    if (!suite.isValid(i))
      continue;
    std::printf("%-28s", b.name.c_str());
    double base = -1;
    for (size_t si = 0; si < sts.size(); ++si) {
      driver::CompileJob *job = jobs[si][i];
      double t = -1;
      if (job && job->ok()) {
        t = timeCompiled(b, job->result().module.get(),
                         sts[si].opts.innerSerialize, /*scale=*/2,
                         /*threads=*/2);
      } else if (job) {
        std::fprintf(stderr, "compile failed for %s:\n%s\n", b.id.c_str(),
                     job->diagnostics().str().c_str());
      }
      if (base < 0)
        base = t;
      double speedup = t > 0 ? base / t : 0.0;
      if (si > 0 && speedup > 0)
        speedups[si].push_back(speedup);
      std::printf("%12.3f", speedup);
    }
    std::printf("\n");
  }
  std::printf("\nGeomean speedup per stage (paper: mincut +4.1%% on "
              "barrier benchmarks, openmpopt +8.9%%, affine +4.6%%):\n");
  size_t idx = 0;
  for (const Stage &s : stages()) {
    if (idx > 0)
      std::printf("  %-12s %.3fx\n", s.name, geomean(speedups[idx]));
    ++idx;
  }
}

/// Per-pass compile-time breakdown of each ablation stage, aggregated
/// across the Rodinia suite. Shows where each enabled axis spends its
/// compile time (the PassManager timing instrumentation), then repeats
/// the whole sweep against a shared pass-result cache: consecutive
/// stages differ in a single pipeline axis, so the shared prefix of
/// every stage replays from cache and only the changed suffix re-runs.
void printPassTimingBreakdown(const SuiteModules &suite) {
  std::printf("\n=== Per-pass compile time per ablation stage (seconds, "
              "summed over suite) ===\n\n");
  double coldTotal = 0;
  for (const Stage &s : stages()) {
    std::printf("--- stage %s (cache off)\n", s.name);
    PassTimeAggregator agg = timeSuiteCompiles(s.opts, suite);
    coldTotal += agg.totalSeconds();
    agg.print();
  }

  transforms::PassResultCache cache;
  double populateTotal = 0;
  for (const Stage &s : stages())
    populateTotal += timeSuiteCompiles(s.opts, suite, &cache).totalSeconds();
  // Steady state: the sweep re-run against the populated cache — the
  // recompile-after-nothing-changed case every ablation iteration hits.
  double warmTotal = 0;
  for (const Stage &s : stages())
    warmTotal += timeSuiteCompiles(s.opts, suite, &cache).totalSeconds();

  std::printf("\n=== Ablation sweep compile time: shared-prefix caching "
              "===\n\n");
  std::printf("  cache off      : %10.6f s total pass time\n", coldTotal);
  std::printf("  cache populate : %10.6f s total pass time (stores every "
              "stage's changed suffix)\n",
              populateTotal);
  std::printf("  cache warm     : %10.6f s total pass time (%.2fx faster "
              "than cache off)\n",
              warmTotal, warmTotal > 0 ? coldTotal / warmTotal : 0.0);
  std::printf("  %s\n", cache.statsStr().c_str());

  // Where the populate overhead went: keying each (function, pass)
  // boundary. Structural hashing removed the print from that path.
  printKeyingTime(suite);
}

void BM_AblationOne(benchmark::State &state) {
  const auto &b = rodinia::suite()[static_cast<size_t>(state.range(0))];
  transforms::PipelineOptions opts;
  for (auto _ : state)
    benchmark::DoNotOptimize(timeCuda(b, opts, 1, 2, 1));
}
BENCHMARK(BM_AblationOne)->Arg(0)->Iterations(1)->Unit(
    benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  SuiteModules suite = parseSuiteModules();
  printTable(suite);
  printPassTimingBreakdown(suite);
  return 0;
}
