// Fig. 13 (left) reproduction: per-benchmark speedup over the
// unoptimized ("Opt Disabled") transpilation as the paper's optimization
// axes are enabled cumulatively: mincut, openmpopt, affine, innerser.
// Benchmarks containing barriers are marked with '*'.
#include "bench_common.h"

#include <benchmark/benchmark.h>

using namespace paralift;
using namespace paralift::bench;

namespace {

struct Stage {
  const char *name;
  transforms::PipelineOptions opts;
};

std::vector<Stage> stages() {
  using transforms::PipelineOptions;
  std::vector<Stage> out;
  PipelineOptions disabled = PipelineOptions::optDisabled();
  out.push_back({"OptDisabled", disabled});
  PipelineOptions mincut = disabled;
  mincut.minCut = true;
  out.push_back({"+mincut", mincut});
  // Barrier motion is our extra axis (the paper folds motion into the
  // §IV-A discussion); it further shrinks the fission caches min-cut
  // sizes.
  PipelineOptions motion = mincut;
  motion.barrierMotion = true;
  out.push_back({"+motion", motion});
  PipelineOptions openmp = motion;
  openmp.openmpOpt = true;
  out.push_back({"+openmpopt", openmp});
  PipelineOptions affine = openmp;
  affine.affineOpts = true;
  out.push_back({"+affine", affine});
  PipelineOptions innerser = affine;
  innerser.innerSerialize = true;
  out.push_back({"+innerser", innerser});
  return out;
}

void printTable() {
  std::printf("\n=== Fig. 13 (left): ablation, speedup over OptDisabled "
              "===\n\n");
  std::printf("%-28s", "benchmark");
  for (const Stage &s : stages())
    std::printf("%12s", s.name);
  std::printf("\n");

  std::vector<std::vector<double>> speedups(stages().size());
  for (const auto &b : rodinia::suite()) {
    std::printf("%-28s", b.name.c_str());
    double base = -1;
    size_t idx = 0;
    for (const Stage &s : stages()) {
      transforms::PipelineOptions opts = s.opts;
      double t = timeCuda(b, opts, /*scale=*/2, /*threads=*/2);
      if (base < 0)
        base = t;
      double speedup = t > 0 ? base / t : 0.0;
      if (idx > 0 && speedup > 0)
        speedups[idx].push_back(speedup);
      std::printf("%12.3f", speedup);
      ++idx;
    }
    std::printf("\n");
  }
  std::printf("\nGeomean speedup per stage (paper: mincut +4.1%% on "
              "barrier benchmarks, openmpopt +8.9%%, affine +4.6%%):\n");
  size_t idx = 0;
  for (const Stage &s : stages()) {
    if (idx > 0)
      std::printf("  %-12s %.3fx\n", s.name, geomean(speedups[idx]));
    ++idx;
  }
}

/// Per-pass compile-time breakdown of each ablation stage, aggregated
/// across the Rodinia suite. Shows where each enabled axis spends its
/// compile time (the PassManager timing instrumentation).
void printPassTimingBreakdown() {
  std::printf("\n=== Per-pass compile time per ablation stage (seconds, "
              "summed over suite) ===\n\n");
  for (const Stage &s : stages()) {
    std::printf("--- stage %s\n", s.name);
    timeSuiteCompiles(s.opts).print();
  }
}

void BM_AblationOne(benchmark::State &state) {
  const auto &b = rodinia::suite()[static_cast<size_t>(state.range(0))];
  transforms::PipelineOptions opts;
  for (auto _ : state)
    benchmark::DoNotOptimize(timeCuda(b, opts, 1, 2, 1));
}
BENCHMARK(BM_AblationOne)->Arg(0)->Iterations(1)->Unit(
    benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printTable();
  printPassTimingBreakdown();
  return 0;
}
