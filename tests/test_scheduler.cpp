// DAG-scheduler stress tests: a 4x-duplicated Rodinia suite with a
// deterministic random per-module pipeline mix, compiled under
// --pm-threads={1,2,8} against one shared cache, repeatedly — asserting
// bit-for-bit output identity with the lockstep executor, no deadlocks
// (a hang fails the ctest timeout), correct in-flight dedup across the
// duplicated modules, and raw TaskScheduler invariants (dynamic spawn,
// join counters, injection from outside the pool).
#include "driver/compiler.h"
#include "ir/printer.h"
#include "rodinia/rodinia.h"
#include "runtime/thread_pool.h"
#include "transforms/pass_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <random>

using namespace paralift;
using transforms::PipelineOptions;

namespace {

/// One queued module of the stress batch.
struct StressJob {
  std::string name;
  const char *source;
  PipelineOptions opts;
};

/// 4x duplicated suite with a seeded random pipeline mix per module —
/// duplicates share kernels (exercising in-flight dedup) while the mixed
/// pipelines split the batch into overlapping groups.
std::vector<StressJob> stressJobs() {
  const PipelineOptions modes[] = {PipelineOptions{},
                                   PipelineOptions::optDisabled(),
                                   PipelineOptions::mcuda()};
  std::mt19937 rng(12345);
  std::vector<StressJob> jobs;
  for (int rep = 0; rep < 4; ++rep)
    for (const auto &b : rodinia::suite())
      jobs.push_back({b.id + "#" + std::to_string(rep), b.cudaSource,
                      modes[rng() % 3]});
  return jobs;
}

std::vector<std::string> compileStress(const std::vector<StressJob> &jobs,
                                       unsigned threads,
                                       driver::ScheduleMode schedule,
                                       transforms::PassResultCache *cache) {
  driver::SessionOptions so;
  so.threads = threads;
  so.schedule = schedule;
  so.cache = cache;
  so.useEnvCache = false;
  driver::CompilerSession session(std::move(so));
  std::vector<driver::CompileJob *> handles;
  for (const StressJob &j : jobs)
    handles.push_back(&session.addSource(j.name, j.source, j.opts));
  EXPECT_TRUE(session.compileAll());
  std::vector<std::string> out;
  for (driver::CompileJob *h : handles) {
    EXPECT_TRUE(h->ok()) << h->name() << ": " << h->diagnostics().str();
    out.push_back(h->ok() ? ir::printOp(h->result().module.op())
                          : std::string());
  }
  return out;
}

} // namespace

TEST(SchedulerStressTest, DuplicatedSuiteMixedPipelinesMatchesLockstep) {
  std::vector<StressJob> jobs = stressJobs();
  // Lockstep reference: serial, fresh cache.
  transforms::PassResultCache refCache;
  std::vector<std::string> expected =
      compileStress(jobs, 1, driver::ScheduleMode::Lockstep, &refCache);

  for (unsigned threads : {1u, 2u, 8u}) {
    // One shared cache per thread count, reused across repeated runs:
    // run 1 populates under contention, later runs replay under
    // contention. Any deadlock hangs the test past its ctest timeout.
    transforms::PassResultCache cache;
    for (int run = 0; run < 3; ++run) {
      std::vector<std::string> got =
          compileStress(jobs, threads, driver::ScheduleMode::Dag, &cache);
      ASSERT_EQ(got.size(), expected.size());
      for (size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], expected[i])
            << "threads=" << threads << " run=" << run << " " << jobs[i].name;
    }
    // The duplicated modules must have deduplicated: strictly fewer
    // passes executed than (modules x passes) would take without dedup —
    // replays must dominate executions across the three runs.
    auto s = cache.stats();
    EXPECT_GT(s.passesReplayed, s.passesExecuted);
  }
}

TEST(SchedulerStressTest, FuturesResolveBeforeCompileAllReturns) {
  // Async batch: every future must resolve during the batch; with >1
  // module the first future resolves while the batch is still in flight
  // (asserted via the job-completion hook, which fires mid-batch under
  // the DAG scheduler).
  std::vector<StressJob> jobs = stressJobs();
  transforms::PassResultCache cache;
  driver::SessionOptions so;
  so.threads = 8;
  so.cache = &cache;
  so.useEnvCache = false;
  std::atomic<int> completions{0};
  std::atomic<uint64_t> executedAtFirst{~0ull};
  so.onJobCompleted = [&](driver::CompileJob &) {
    if (completions.fetch_add(1) == 0)
      executedAtFirst = cache.stats().passesExecuted;
  };
  driver::CompilerSession session(std::move(so));
  std::vector<driver::CompileJob *> handles;
  for (const StressJob &j : jobs)
    handles.push_back(&session.addSource(j.name, j.source, j.opts));
  session.compileAllAsync();
  // Futures are usable (in any order) while the batch runs.
  for (auto it = handles.rbegin(); it != handles.rend(); ++it) {
    (*it)->wait();
    EXPECT_TRUE((*it)->ok()) << (*it)->diagnostics().str();
  }
  EXPECT_TRUE(session.wait());
  EXPECT_EQ(completions.load(), static_cast<int>(handles.size()));
  // The first completion observed an unfinished batch.
  EXPECT_LT(executedAtFirst.load(), cache.stats().passesExecuted);
}

//===----------------------------------------------------------------------===//
// Raw TaskScheduler invariants
//===----------------------------------------------------------------------===//

TEST(TaskSchedulerTest, DynamicSpawnChainsAndJoinsDrainCompletely) {
  runtime::ThreadPool pool(4);
  runtime::TaskScheduler sched(&pool);
  std::atomic<int> leaves{0};
  std::atomic<int> joins{0};
  // 32 chains of depth 3; each tail fans into 4 leaves joined by a
  // last-finisher continuation — the DAG shapes scheduleBatch emits.
  for (int c = 0; c < 32; ++c) {
    sched.spawn([&, c](unsigned) {
      sched.spawn([&](unsigned) {
        sched.spawn([&](unsigned) {
          auto left = std::make_shared<std::atomic<int>>(4);
          for (int l = 0; l < 4; ++l)
            sched.spawn([&, left](unsigned) {
              leaves.fetch_add(1);
              if (left->fetch_sub(1) == 1)
                joins.fetch_add(1);
            });
        });
      });
    });
  }
  sched.run();
  EXPECT_EQ(leaves.load(), 32 * 4);
  EXPECT_EQ(joins.load(), 32);
  // A drained scheduler accepts and drains further work.
  std::atomic<int> more{0};
  for (int i = 0; i < 8; ++i)
    sched.spawn([&](unsigned) { more.fetch_add(1); });
  sched.run();
  EXPECT_EQ(more.load(), 8);
}

TEST(TaskSchedulerTest, SerialFallbackRunsDepthFirst) {
  // Without a pool the drain is deterministic and depth-first: a chain's
  // continuation runs before the next root task starts.
  runtime::TaskScheduler sched(nullptr);
  std::vector<int> order;
  for (int c = 0; c < 3; ++c)
    sched.spawn([&, c](unsigned) {
      order.push_back(c * 10);
      sched.spawn([&, c](unsigned) { order.push_back(c * 10 + 1); });
    });
  sched.run();
  ASSERT_EQ(order.size(), 6u);
  for (int c = 0; c < 3; ++c)
    EXPECT_EQ(order[2 * c] + 1, order[2 * c + 1]);
}
