// PassManager infrastructure tests: the Pass interface (options,
// statistics), textual pipeline parsing with parameters and round-trip
// printing, instrumentation (timing, verify-after-each-pass), parallel
// per-kernel scheduling, and the guarantee that the declarative
// buildPipeline reproduces the pre-PassManager hardcoded pass sequence
// bit-for-bit on the Rodinia suite.
#include "driver/compiler.h"
#include "frontend/irgen.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "rodinia/rodinia.h"
#include "transforms/registry.h"

#include <gtest/gtest.h>

using namespace paralift;
using namespace paralift::ir;
using namespace paralift::transforms;

namespace {

OwnedModule parseOk(const std::string &text) {
  DiagnosticEngine diag;
  auto m = ir::parseModule(text, diag);
  EXPECT_TRUE(m.has_value()) << diag.str();
  return std::move(*m);
}

/// A module with a constant-trip loop that stores into an array;
/// unrollable at max-trip >= 4, foldable afterwards.
const char *kLoopModule = R"(module {
  func {sym_name = "f", res_types = []} {
    [%0: memref<?xf32>]:
    %1 = const.int {value = 0} : index
    %2 = const.int {value = 4} : index
    %3 = const.int {value = 1} : index
    scf.for(%1, %2, %3) {
      [%4: index]:
      %5 = const.float {value = 1.0} : f32
      memref.store(%5, %0, %4)
      yield
    }
    return
  }
})";

} // namespace

//===----------------------------------------------------------------------===//
// Pass options
//===----------------------------------------------------------------------===//

TEST(PassOptionsTest, DeclaredOptionsApplyAndPrint) {
  auto pass = createUnrollPass();
  EXPECT_EQ(pass->spec(), "unroll"); // default max-trip elided
  std::string err;
  EXPECT_TRUE(pass->setOption("max-trip", "16", &err)) << err;
  EXPECT_EQ(pass->spec(), "unroll{max-trip=16}");
  // Setting back to the default elides it again.
  EXPECT_TRUE(pass->setOption("max-trip", "8", &err));
  EXPECT_EQ(pass->spec(), "unroll");
}

TEST(PassOptionsTest, UnknownOptionAndBadValue) {
  auto pass = createCpuifyPass();
  std::string err;
  EXPECT_FALSE(pass->setOption("no-such-option", "1", &err));
  EXPECT_NE(err.find("unknown option 'no-such-option'"), std::string::npos)
      << err;
  EXPECT_NE(err.find("mincut"), std::string::npos)
      << "should list known options: " << err;
  EXPECT_FALSE(pass->setOption("mincut", "maybe", &err));
  EXPECT_NE(err.find("invalid value 'maybe'"), std::string::npos) << err;

  auto unroll = createUnrollPass();
  EXPECT_FALSE(unroll->setOption("max-trip", "16x", &err));
  EXPECT_NE(err.find("invalid value '16x'"), std::string::npos) << err;
  // Integer options declare ranges; a negative trip budget is a typo,
  // not a silent no-op.
  EXPECT_FALSE(unroll->setOption("max-trip", "-1", &err));
  EXPECT_NE(err.find("out of range"), std::string::npos) << err;
}

//===----------------------------------------------------------------------===//
// Pipeline spec parsing
//===----------------------------------------------------------------------===//

TEST(PipelineSpecTest, ParsesParameterizedPasses) {
  DiagnosticEngine diag;
  auto specs = parsePipelineSpec(
      " inline , unroll{max-trip=16}, cpuify{ mincut = false } ", diag);
  ASSERT_TRUE(specs.has_value()) << diag.str();
  ASSERT_EQ(specs->size(), 3u);
  EXPECT_EQ((*specs)[0].name, "inline");
  EXPECT_TRUE((*specs)[0].options.empty());
  EXPECT_EQ((*specs)[1].name, "unroll");
  ASSERT_EQ((*specs)[1].options.size(), 1u);
  EXPECT_EQ((*specs)[1].options[0].first, "max-trip");
  EXPECT_EQ((*specs)[1].options[0].second, "16");
  EXPECT_EQ((*specs)[2].name, "cpuify");
  ASSERT_EQ((*specs)[2].options.size(), 1u);
  EXPECT_EQ((*specs)[2].options[0].first, "mincut");
  EXPECT_EQ((*specs)[2].options[0].second, "false");
}

TEST(PipelineSpecTest, SyntaxErrors) {
  DiagnosticEngine diag;
  EXPECT_FALSE(parsePipelineSpec("unroll{max-trip=16", diag).has_value());
  EXPECT_NE(diag.str().find("missing '}'"), std::string::npos) << diag.str();

  diag.clear();
  EXPECT_FALSE(parsePipelineSpec("unroll{max-trip}", diag).has_value());
  EXPECT_NE(diag.str().find("expected '='"), std::string::npos) << diag.str();
}

TEST(PipelineSpecTest, UnknownPassDiagnostic) {
  PassManager pm;
  DiagnosticEngine diag;
  EXPECT_FALSE(buildPipelineFromSpec(pm, "cse,no-such-pass", diag));
  EXPECT_NE(diag.str().find("unknown pass 'no-such-pass'"),
            std::string::npos)
      << diag.str();
  // Passes before the error were appended.
  EXPECT_EQ(pm.passes().size(), 1u);
}

TEST(PipelineSpecTest, UnknownOptionDiagnostic) {
  PassManager pm;
  DiagnosticEngine diag;
  EXPECT_FALSE(buildPipelineFromSpec(pm, "cse{bogus=1}", diag));
  EXPECT_NE(diag.str().find("unknown option 'bogus' for pass 'cse'"),
            std::string::npos)
      << diag.str();
}

TEST(PipelineSpecTest, RoundTripIsIdentity) {
  // parse -> print -> parse: the canonical printed form is a fixpoint,
  // including for named variants which normalize to parameterized form
  // and for nested repeat constructs.
  const char *inputs[] = {
      "inline,canonicalize,cse",
      "unroll{max-trip=16},cpuify{mincut=false}",
      "cpuify-nomincut,omp-lower-outer-only",
      "inline-kernels,mem2reg,store-forward,licm,barrier-elim,"
      "barrier-motion,omp-lower{inner-serialize=false}",
      "repeat{n=3}(canonicalize,cse)",
      "inline,repeat(canonicalize,cse),unroll{max-trip=16}",
      "repeat{n=4}(canonicalize,unroll{max-trip=2})",
      "repeat{until=fixpoint}(canonicalize,cse)",
      "repeat{until=fixpoint}(canonicalize,unroll{max-trip=2})",
      "",
  };
  for (const char *input : inputs) {
    DiagnosticEngine diag;
    PassManager pm1;
    ASSERT_TRUE(buildPipelineFromSpec(pm1, input, diag))
        << input << ": " << diag.str();
    std::string printed = pm1.pipelineSpec();
    PassManager pm2;
    ASSERT_TRUE(buildPipelineFromSpec(pm2, printed, diag))
        << printed << ": " << diag.str();
    EXPECT_EQ(pm2.pipelineSpec(), printed) << "input: " << input;
    ASSERT_EQ(pm2.passes().size(), pm1.passes().size());
    for (size_t i = 0; i < pm1.passes().size(); ++i)
      EXPECT_EQ(pm2.passes()[i]->spec(), pm1.passes()[i]->spec());
  }
}

TEST(PipelineSpecTest, VariantNamesNormalize) {
  DiagnosticEngine diag;
  PassManager pm;
  ASSERT_TRUE(buildPipelineFromSpec(pm, "cpuify-nomincut", diag));
  EXPECT_EQ(pm.pipelineSpec(), "cpuify{mincut=false}");
}

//===----------------------------------------------------------------------===//
// repeat{n=K}(...)
//===----------------------------------------------------------------------===//

TEST(RepeatSpecTest, DefaultNIsElided) {
  DiagnosticEngine diag;
  PassManager pm;
  ASSERT_TRUE(
      buildPipelineFromSpec(pm, "repeat{n=2}(canonicalize,cse)", diag));
  EXPECT_EQ(pm.pipelineSpec(), "repeat(canonicalize,cse)");
}

TEST(RepeatSpecTest, SyntaxAndSemanticErrors) {
  DiagnosticEngine diag;
  PassManager pm;
  EXPECT_FALSE(buildPipelineFromSpec(pm, "repeat(canonicalize", diag));
  EXPECT_NE(diag.str().find("missing ')'"), std::string::npos) << diag.str();

  diag.clear();
  EXPECT_FALSE(buildPipelineFromSpec(pm, "repeat", diag));
  EXPECT_NE(diag.str().find("repeat requires a parenthesized pass list"),
            std::string::npos)
      << diag.str();

  // Module passes cannot be scheduled per-function inside a repeat.
  diag.clear();
  EXPECT_FALSE(buildPipelineFromSpec(pm, "repeat(inline,cse)", diag));
  EXPECT_NE(diag.str().find("'inline' is a module pass"), std::string::npos)
      << diag.str();

  // Only composite passes take a pass list.
  diag.clear();
  EXPECT_FALSE(buildPipelineFromSpec(pm, "cse(canonicalize)", diag));
  EXPECT_NE(diag.str().find("does not take a pass list"), std::string::npos)
      << diag.str();
}

TEST(RepeatSpecTest, RunsChildrenNTimes) {
  // unroll{max-trip=2} only peels one 4-trip loop level per run after
  // canonicalize re-folds; observable via the repeat producing the same
  // result as manually running the pair n times.
  OwnedModule m1 = parseOk(kLoopModule);
  OwnedModule m2 = parseOk(kLoopModule);
  DiagnosticEngine diag;
  ASSERT_TRUE(
      runPassPipeline(m1.get(), "repeat{n=3}(unroll{max-trip=4},"
                                "canonicalize)",
                      diag))
      << diag.str();
  ASSERT_TRUE(runPassPipeline(m2.get(),
                              "unroll{max-trip=4},canonicalize,"
                              "unroll{max-trip=4},canonicalize,"
                              "unroll{max-trip=4},canonicalize",
                              diag))
      << diag.str();
  EXPECT_EQ(printOp(m1.op()), printOp(m2.op()));
  // The loop is gone either way.
  EXPECT_EQ(printOp(m1.op()).find("scf.for"), std::string::npos);
}

TEST(RepeatFixpointTest, ConvergesLikeManualIteration) {
  // The 4-trip loop needs two unroll{max-trip=2}+canonicalize rounds to
  // disappear plus one round to observe convergence; fixpoint mode finds
  // that on its own and matches the manually iterated sequence.
  OwnedModule m1 = parseOk(kLoopModule);
  OwnedModule m2 = parseOk(kLoopModule);
  DiagnosticEngine diag;
  ASSERT_TRUE(runPassPipeline(
      m1.get(), "repeat{until=fixpoint}(unroll{max-trip=4},canonicalize)",
      diag))
      << diag.str();
  ASSERT_TRUE(runPassPipeline(m2.get(),
                              "unroll{max-trip=4},canonicalize,"
                              "unroll{max-trip=4},canonicalize",
                              diag))
      << diag.str();
  EXPECT_EQ(printOp(m1.op()), printOp(m2.op()));
  EXPECT_EQ(printOp(m1.op()).find("scf.for"), std::string::npos);
}

TEST(RepeatFixpointTest, StopsImmediatelyWhenNothingChanges) {
  // A module already in normal form: one fixpoint round reports no
  // change and the repeat stops (observable through pass statistics —
  // zero ops removed).
  OwnedModule m = parseOk(kLoopModule);
  DiagnosticEngine diag;
  ASSERT_TRUE(
      runPassPipeline(m.get(), "repeat{until=fixpoint}(canonicalize,cse)",
                      diag))
      << diag.str();
  std::string stable = printOp(m.op());
  ASSERT_TRUE(
      runPassPipeline(m.get(), "repeat{until=fixpoint}(canonicalize,cse)",
                      diag))
      << diag.str();
  EXPECT_EQ(printOp(m.op()), stable);
}

TEST(RepeatFixpointTest, PrintFallbackForNonTrackingChildren) {
  // omp-lower reports no per-call change tracking, so fixpoint mode
  // falls back to comparing printed IR round over round; lowering is
  // idempotent, so the repeat terminates and matches a single run.
  const char *src = "__global__ void k(float* a, int n) {\n"
                    "  int i = blockIdx.x;\n"
                    "  if (i < n) { a[i] = a[i] + 1.0f; }\n"
                    "}\n"
                    "void run(float* a, int n) { k<<<n, 1>>>(a, n); }\n";
  DiagnosticEngine diag;
  auto once = driver::compileForSimt(src, diag);
  ASSERT_TRUE(once.ok) << diag.str();
  OwnedModule repeated = parseOk(printOp(once.module.op()));
  ASSERT_TRUE(runPassPipeline(once.module.get(), "cpuify,omp-lower", diag))
      << diag.str();
  ASSERT_TRUE(runPassPipeline(repeated.get(),
                              "cpuify,repeat{until=fixpoint}(omp-lower)",
                              diag))
      << diag.str();
  EXPECT_EQ(printOp(once.module.op()), printOp(repeated.op()));
}

TEST(RepeatFixpointTest, BadUntilValueRejected) {
  DiagnosticEngine diag;
  PassManager pm;
  EXPECT_FALSE(
      buildPipelineFromSpec(pm, "repeat{until=sometimes}(cse)", diag));
  EXPECT_NE(diag.str().find("expected one of: count, fixpoint"),
            std::string::npos)
      << diag.str();
}

TEST(RepeatFixpointTest, CountAndFixpointAreMutuallyExclusive) {
  // A round count would be silently ignored in fixpoint mode, so the
  // registry rejects the combination outright.
  DiagnosticEngine diag;
  PassManager pm;
  EXPECT_FALSE(buildPipelineFromSpec(
      pm, "repeat{n=3,until=fixpoint}(canonicalize,cse)", diag));
  EXPECT_NE(diag.str().find("mutually exclusive"), std::string::npos)
      << diag.str();
}

TEST(PipelineSpecTest, ParameterizedPipelineRuns) {
  OwnedModule m = parseOk(kLoopModule);
  DiagnosticEngine diag;
  // max-trip=2 refuses the 4-trip loop; the scf.for survives.
  ASSERT_TRUE(runPassPipeline(m.get(), "unroll{max-trip=2}", diag))
      << diag.str();
  EXPECT_NE(printOp(m.op()).find("scf.for"), std::string::npos);
  // max-trip=4 unrolls it.
  ASSERT_TRUE(runPassPipeline(m.get(), "unroll{max-trip=4},canonicalize",
                              diag))
      << diag.str();
  EXPECT_EQ(printOp(m.op()).find("scf.for"), std::string::npos)
      << printOp(m.op());
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

TEST(PassStatisticsTest, UnrollCountsLoops) {
  OwnedModule m = parseOk(kLoopModule);
  PassManager pm;
  pm.addPass(createUnrollPass(/*maxTrip=*/4));
  DiagnosticEngine diag;
  ASSERT_TRUE(pm.run(m.get(), diag)) << diag.str();
  const auto &stats = pm.passes()[0]->statistics();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0]->name, "loops-unrolled");
  EXPECT_EQ(stats[0]->value.load(), 1u);
  EXPECT_NE(pm.statisticsStr().find("loops-unrolled"), std::string::npos);
}

TEST(PassStatisticsTest, WalkBasedStatsAreGatedOnEnable) {
  // canonicalize's ops-removed needs extra IR walks, so it only counts
  // when statistics collection is enabled on the manager.
  for (bool enabled : {false, true}) {
    OwnedModule m = parseOk(kLoopModule);
    PassManager pm;
    pm.addPass(createUnrollPass(/*maxTrip=*/4));
    pm.addPass(createCanonicalizePass());
    if (enabled)
      pm.enableStatistics();
    DiagnosticEngine diag;
    ASSERT_TRUE(pm.run(m.get(), diag)) << diag.str();
    uint64_t removed = pm.passes()[1]->statistics()[0]->value.load();
    if (enabled)
      EXPECT_GT(removed, 0u);
    else
      EXPECT_EQ(removed, 0u);
  }
}

//===----------------------------------------------------------------------===//
// Instrumentation
//===----------------------------------------------------------------------===//

TEST(PassTimingTest, RecordsEveryPassInOrder) {
  OwnedModule m = parseOk(kLoopModule);
  PassManager pm;
  PassTimingReport report;
  pm.enableTiming(&report);
  DiagnosticEngine diag;
  ASSERT_TRUE(buildPipelineFromSpec(
      pm, "unroll{max-trip=16},canonicalize,cse", diag));
  ASSERT_TRUE(pm.run(m.get(), diag)) << diag.str();
  ASSERT_EQ(report.records.size(), 3u);
  EXPECT_EQ(report.records[0].spec, "unroll{max-trip=16}");
  EXPECT_EQ(report.records[1].spec, "canonicalize");
  EXPECT_EQ(report.records[2].spec, "cse");
  for (const auto &r : report.records)
    EXPECT_GE(r.seconds, 0.0);
  std::string table = report.str();
  EXPECT_NE(table.find("Pass execution timing"), std::string::npos);
  EXPECT_NE(table.find("unroll{max-trip=16}"), std::string::npos);
}

namespace {

/// Deliberately produces invalid IR: erases the func terminator.
class BreakTerminatorPass : public Pass {
public:
  BreakTerminatorPass() : Pass("break-terminator", "test-only IR breaker") {}
  bool run(ModuleOp module, DiagnosticEngine &) override {
    for (Op *fn : module.body())
      if (fn->kind() == OpKind::Func) {
        Op *term = FuncOp(fn).body().terminator();
        if (term)
          term->erase();
      }
    return true;
  }
};

} // namespace

TEST(VerifyEachTest, AttributesBreakageToPass) {
  OwnedModule m = parseOk(kLoopModule);
  PassManager pm;
  pm.addPass(createCanonicalizePass());
  pm.addPass(std::make_unique<BreakTerminatorPass>());
  pm.addPass(createCSEPass()); // must not run
  pm.enableVerifyEach();
  DiagnosticEngine diag;
  EXPECT_FALSE(pm.run(m.get(), diag));
  std::string out = diag.str();
  EXPECT_NE(out.find("pass 'break-terminator' broke invariant"),
            std::string::npos)
      << out;
  // The healthy pass before it is not blamed.
  EXPECT_EQ(out.find("pass 'canonicalize' broke invariant"),
            std::string::npos)
      << out;
}

TEST(VerifyEachTest, CleanPipelinePasses) {
  OwnedModule m = parseOk(kLoopModule);
  DiagnosticEngine diag;
  // runPassPipeline verifies after every pass.
  EXPECT_TRUE(runPassPipeline(
      m.get(), "canonicalize,cse,mem2reg,licm,unroll,canonicalize", diag))
      << diag.str();
}

TEST(IRPrintTest, PrintsAroundMatchingPass) {
  OwnedModule m = parseOk(kLoopModule);
  PassManager pm;
  pm.addPass(createCanonicalizePass());
  pm.addPass(createCSEPass());
  char *buf = nullptr;
  size_t bufSize = 0;
  FILE *mem = open_memstream(&buf, &bufSize);
  ASSERT_NE(mem, nullptr);
  pm.addInstrumentation(std::make_unique<IRPrintInstrumentation>(
      /*before=*/true, /*after=*/true, /*filter=*/"cse", mem));
  DiagnosticEngine diag;
  ASSERT_TRUE(pm.run(m.get(), diag)) << diag.str();
  std::fclose(mem);
  std::string out(buf, bufSize);
  free(buf);
  EXPECT_NE(out.find("IR before pass 'cse'"), std::string::npos) << out;
  EXPECT_NE(out.find("IR after pass 'cse'"), std::string::npos) << out;
  EXPECT_EQ(out.find("IR before pass 'canonicalize'"), std::string::npos)
      << out;
}

//===----------------------------------------------------------------------===//
// Parallel per-kernel scheduling
//===----------------------------------------------------------------------===//

namespace {

/// CUDA-subset source with several independent kernels, so function
/// passes have real fan-out.
std::string manyKernelSource() {
  std::string src;
  for (int k = 0; k < 6; ++k) {
    std::string n = std::to_string(k);
    src += "__global__ void kern" + n + "(float* a, float* b, int n) {\n"
           "  int i = blockIdx.x * blockDim.x + threadIdx.x;\n"
           "  if (i < n) {\n"
           "    float x = a[i] * " + std::to_string(k + 2) + ".0f;\n"
           "    float y = a[i] * " + std::to_string(k + 2) + ".0f;\n"
           "    b[i] = x + y;\n"
           "  }\n"
           "}\n"
           "void launch" + n + "(float* a, float* b, int n) {\n"
           "  kern" + n + "<<<(n + 63) / 64, 64>>>(a, b, n);\n"
           "}\n";
  }
  return src;
}

} // namespace

TEST(ParallelSchedulingTest, ThreadedRunMatchesSerial) {
  std::string src = manyKernelSource();
  auto compileWith = [&](unsigned threads) {
    DiagnosticEngine diag;
    PassRunConfig config;
    config.threads = threads;
    auto cc = driver::compile(src, PipelineOptions{}, diag, config);
    EXPECT_TRUE(cc.ok) << diag.str();
    return printOp(cc.module.op());
  };
  std::string serial = compileWith(1);
  std::string threaded = compileWith(4);
  EXPECT_EQ(serial, threaded);
}

TEST(ParallelSchedulingTest, ErrorsSurviveParallelRun) {
  // A barrier outside any parallel nest is a cpuify hard error; it must
  // be reported identically under parallel scheduling.
  const char *bad = R"(module {
  func {sym_name = "f", res_types = []} {
    polygeist.barrier
    return
  }
  func {sym_name = "g", res_types = []} {
    return
  }
  func {sym_name = "h", res_types = []} {
    return
  }
})";
  for (unsigned threads : {1u, 4u}) {
    OwnedModule m = parseOk(bad);
    PassManager pm;
    pm.addPass(createCpuifyPass());
    pm.setThreadCount(threads);
    DiagnosticEngine diag;
    EXPECT_FALSE(pm.run(m.get(), diag)) << "threads=" << threads;
    EXPECT_NE(diag.str().find("barrier outside thread-parallel loop"),
              std::string::npos)
        << diag.str();
  }
}

//===----------------------------------------------------------------------===//
// Declarative pipeline == legacy hardcoded sequence
//===----------------------------------------------------------------------===//

namespace {

/// Byte-for-byte replica of the pre-PassManager runPipeline (the fixed
/// free-function sequence), kept as the golden reference. The declarative
/// pipeline now expresses its canonicalize/cse pairs as
/// repeat{n=2}(canonicalize,cse); matching this single-round replica
/// bit-for-bit additionally proves the pairs' second round is a no-op
/// across the suite (canonicalize is internally fixpoint and cse is
/// idempotent after it).
bool legacyRunPipeline(ModuleOp module, const PipelineOptions &opts,
                       DiagnosticEngine &diag) {
  runInliner(module, /*onlyInKernels=*/!opts.coreOpts);
  if (opts.coreOpts) {
    runCanonicalize(module);
    runCSE(module);
    runMem2Reg(module);
    runCSE(module);
    runStoreForward(module);
    runCanonicalize(module);
    runLICM(module);
    runCSE(module);
    runBarrierElim(module);
    if (opts.barrierMotion)
      runBarrierMotion(module);
  }
  if (opts.affineOpts) {
    runUnroll(module);
    runCanonicalize(module);
    if (opts.coreOpts) {
      runCSE(module);
      runStoreForward(module);
      runBarrierElim(module);
      if (opts.barrierMotion)
        runBarrierMotion(module);
    }
  }
  runCpuify(module, opts.minCut && !opts.mcudaMode, diag);
  if (diag.hasErrors())
    return false;
  if (opts.coreOpts) {
    runCanonicalize(module);
    runCSE(module);
    runMem2Reg(module);
    runLICM(module);
  }
  OmpLowerOptions ompOpts;
  ompOpts.collapse = opts.openmpOpt;
  ompOpts.fuseRegions = opts.openmpOpt;
  ompOpts.hoistRegions = opts.openmpOpt;
  ompOpts.innerSerialize = opts.innerSerialize;
  ompOpts.outerOnly = opts.mcudaMode;
  runOmpLower(module, ompOpts);
  if (opts.coreOpts) {
    runCanonicalize(module);
    runCSE(module);
  }
  return ir::verifyOk(module.op);
}

void expectPipelineMatchesLegacy(const std::string &source,
                                 const PipelineOptions &opts,
                                 const std::string &label) {
  DiagnosticEngine d1;
  OwnedModule legacy = frontend::compileToIR(source, d1);
  ASSERT_FALSE(d1.hasErrors()) << label << ": " << d1.str();
  bool legacyOk = legacyRunPipeline(legacy.get(), opts, d1);

  DiagnosticEngine d2;
  OwnedModule fresh = frontend::compileToIR(source, d2);
  ASSERT_FALSE(d2.hasErrors()) << label << ": " << d2.str();
  bool newOk = runPipeline(fresh.get(), opts, d2);

  EXPECT_EQ(legacyOk, newOk) << label << ": " << d1.str() << d2.str();
  EXPECT_EQ(printOp(legacy.op()), printOp(fresh.op())) << label;
}

} // namespace

TEST(PipelineEquivalenceTest, RodiniaSuiteFullOpts) {
  for (const auto &b : rodinia::suite())
    expectPipelineMatchesLegacy(b.cudaSource, PipelineOptions{}, b.id);
}

TEST(PipelineEquivalenceTest, RodiniaSuiteOptDisabled) {
  for (const auto &b : rodinia::suite())
    expectPipelineMatchesLegacy(b.cudaSource,
                                PipelineOptions::optDisabled(), b.id);
}

TEST(PipelineEquivalenceTest, RodiniaSuiteMcuda) {
  for (const auto &b : rodinia::suite())
    expectPipelineMatchesLegacy(b.cudaSource, PipelineOptions::mcuda(),
                                b.id);
}

TEST(PipelineEquivalenceTest, ParallelSchedulingMatchesLegacy) {
  PassRunConfig config;
  config.threads = 4;
  config.verifyEach = true;
  for (const auto &b : rodinia::suite()) {
    DiagnosticEngine d1;
    OwnedModule legacy = frontend::compileToIR(b.cudaSource, d1);
    ASSERT_FALSE(d1.hasErrors()) << b.id << ": " << d1.str();
    bool legacyOk = legacyRunPipeline(legacy.get(), PipelineOptions{}, d1);

    DiagnosticEngine d2;
    OwnedModule fresh = frontend::compileToIR(b.cudaSource, d2);
    ASSERT_FALSE(d2.hasErrors()) << b.id << ": " << d2.str();
    bool newOk = runPipeline(fresh.get(), PipelineOptions{}, d2, config);

    EXPECT_EQ(legacyOk, newOk) << b.id << ": " << d1.str() << d2.str();
    EXPECT_EQ(printOp(legacy.op()), printOp(fresh.op())) << b.id;
  }
}
