// End-to-end tests: CUDA-subset source -> all pipeline variants -> VM,
// validated against the lockstep SIMT emulator and C++ oracles.
#include "driver/compiler.h"
#include "ir/printer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>

using namespace paralift;
using namespace paralift::driver;
using transforms::PipelineOptions;

namespace {

/// Compiles + runs `source`'s host function `fn` with the given pipeline.
void runPipelineVariant(const std::string &source,
                        const PipelineOptions &opts, const std::string &fn,
                        const std::vector<Executor::Arg> &args,
                        unsigned threads = 2) {
  DiagnosticEngine diag;
  CompileResult cc = compile(source, opts, diag);
  ASSERT_TRUE(cc.ok) << diag.str();
  Executor exec(cc.module.get(), threads);
  exec.run(fn, args);
}

void runSimt(const std::string &source, const std::string &fn,
             const std::vector<Executor::Arg> &args) {
  DiagnosticEngine diag;
  CompileResult cc = compileForSimt(source, diag);
  ASSERT_TRUE(cc.ok) << diag.str();
  Executor exec(cc.module.get(), 1);
  exec.run(fn, args);
}

const char *kSaxpySrc = R"(
__global__ void saxpy(float* y, float* x, float a, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    y[i] = a * x[i] + y[i];
  }
}
void run(float* y, float* x, float a, int n) {
  saxpy<<<(n + 31) / 32, 32>>>(y, x, a, n);
}
)";

} // namespace

TEST(E2ETest, SaxpySimtEmulator) {
  int n = 100;
  std::vector<float> y(n, 2.0f), x(n);
  std::iota(x.begin(), x.end(), 0.0f);
  runSimt(kSaxpySrc, "run",
          {Executor::bufferF32(y.data(), {n}),
           Executor::bufferF32(x.data(), {n}), 3.0, int64_t(n)});
  for (int i = 0; i < n; ++i)
    EXPECT_FLOAT_EQ(y[i], 3.0f * i + 2.0f) << i;
}

TEST(E2ETest, SaxpyFullPipeline) {
  int n = 100;
  std::vector<float> y(n, 2.0f), x(n);
  std::iota(x.begin(), x.end(), 0.0f);
  runPipelineVariant(kSaxpySrc, PipelineOptions{}, "run",
                     {Executor::bufferF32(y.data(), {n}),
                      Executor::bufferF32(x.data(), {n}), 3.0, int64_t(n)});
  for (int i = 0; i < n; ++i)
    EXPECT_FLOAT_EQ(y[i], 3.0f * i + 2.0f) << i;
}

TEST(E2ETest, SaxpyMcudaMode) {
  int n = 64;
  std::vector<float> y(n, 1.0f), x(n, 2.0f);
  runPipelineVariant(kSaxpySrc, PipelineOptions::mcuda(), "run",
                     {Executor::bufferF32(y.data(), {n}),
                      Executor::bufferF32(x.data(), {n}), 0.5, int64_t(n)});
  for (int i = 0; i < n; ++i)
    EXPECT_FLOAT_EQ(y[i], 2.0f);
}

// The paper's Fig. 1 normalize example: the per-thread O(N) sum must be
// hoisted out of the kernel by parallel LICM, and every pipeline variant
// must agree with the SIMT emulator.
const char *kNormalizeSrc = R"(
__device__ float sum(float* data, int n) {
  float total = 0.0f;
  for (int i = 0; i < n; i++) {
    total += data[i];
  }
  return total;
}
__global__ void normalize(float* out, float* in, int n) {
  int tid = blockIdx.x * blockDim.x + threadIdx.x;
  float val = sum(in, n);
  if (tid < n) {
    out[tid] = in[tid] / val;
  }
}
void launch(float* d_out, float* d_in, int n) {
  normalize<<<(n + 31) / 32, 32>>>(d_out, d_in, n);
}
)";

TEST(E2ETest, NormalizeAllVariantsAgree) {
  int n = 77;
  std::vector<float> in(n), outSimt(n), outOpt(n), outDisabled(n);
  std::mt19937 rng(42);
  std::uniform_real_distribution<float> dist(0.1f, 1.0f);
  for (auto &v : in)
    v = dist(rng);

  runSimt(kNormalizeSrc, "launch",
          {Executor::bufferF32(outSimt.data(), {n}),
           Executor::bufferF32(in.data(), {n}), int64_t(n)});
  runPipelineVariant(kNormalizeSrc, PipelineOptions{}, "launch",
                     {Executor::bufferF32(outOpt.data(), {n}),
                      Executor::bufferF32(in.data(), {n}), int64_t(n)});
  runPipelineVariant(kNormalizeSrc, PipelineOptions::optDisabled(),
                     "launch",
                     {Executor::bufferF32(outDisabled.data(), {n}),
                      Executor::bufferF32(in.data(), {n}), int64_t(n)});
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(outOpt[i], outSimt[i], 1e-5) << i;
    EXPECT_NEAR(outDisabled[i], outSimt[i], 1e-5) << i;
  }
}

TEST(E2ETest, NormalizeSumIsHoisted) {
  // After the full pipeline, the O(N) reduction loop must sit outside
  // every parallel construct: the scf.for appears before any omp op.
  DiagnosticEngine diag;
  CompileResult cc = compile(kNormalizeSrc, PipelineOptions{}, diag);
  ASSERT_TRUE(cc.ok) << diag.str();
  std::string text = ir::printOp(cc.module.op());
  size_t forPos = text.find("scf.for");
  size_t ompPos = text.find("omp.parallel");
  ASSERT_NE(forPos, std::string::npos);
  ASSERT_NE(ompPos, std::string::npos);
  EXPECT_LT(forPos, ompPos)
      << "sum loop was not hoisted out of the parallel region:\n"
      << text;
}

// Shared-memory tree reduction with __syncthreads in a loop (Fig. 7
// pattern): exercises barrier lowering through loop interchange (or
// unrolling when affine opts are on).
const char *kReduceSrc = R"(
__global__ void reduceBlock(float* out, float* in, int n) {
  __shared__ float buf[64];
  int tid = threadIdx.x;
  int gid = blockIdx.x * 64 + threadIdx.x;
  if (gid < n) {
    buf[tid] = in[gid];
  } else {
    buf[tid] = 0.0f;
  }
  __syncthreads();
  for (int s = 32; s > 0; s = s / 2) {
    if (tid < s) {
      buf[tid] = buf[tid] + buf[tid + s];
    }
    __syncthreads();
  }
  if (tid == 0) {
    out[blockIdx.x] = buf[0];
  }
}
void run(float* out, float* in, int n) {
  reduceBlock<<<(n + 63) / 64, 64>>>(out, in, n);
}
)";

class ReducePipelineTest
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool, bool>> {};

TEST_P(ReducePipelineTest, MatchesSimt) {
  auto [mincut, openmp, affine, innerser] = GetParam();
  PipelineOptions opts;
  opts.minCut = mincut;
  opts.openmpOpt = openmp;
  opts.affineOpts = affine;
  opts.innerSerialize = innerser;

  int n = 200;
  int blocks = (n + 63) / 64;
  std::vector<float> in(n);
  std::mt19937 rng(7);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (auto &v : in)
    v = dist(rng);
  std::vector<float> outRef(blocks, 0.0f), outGot(blocks, 0.0f);

  runSimt(kReduceSrc, "run",
          {Executor::bufferF32(outRef.data(), {blocks}),
           Executor::bufferF32(in.data(), {n}), int64_t(n)});
  runPipelineVariant(kReduceSrc, opts, "run",
                     {Executor::bufferF32(outGot.data(), {blocks}),
                      Executor::bufferF32(in.data(), {n}), int64_t(n)});
  for (int b = 0; b < blocks; ++b)
    EXPECT_NEAR(outGot[b], outRef[b], 1e-4) << "block " << b;
}

INSTANTIATE_TEST_SUITE_P(
    AllOptCombos, ReducePipelineTest,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Bool(), ::testing::Bool()));

// While-loop barrier (Fig. 8 pattern): the block iterates until a shared
// counter converges; requires the helper-variable interchange. Note the
// leading __syncthreads: it separates the previous round's condition read
// from this round's counter increment (without it the kernel is racy —
// which the lockstep emulator correctly exposes).
const char *kWhileBarrierSrc = R"(
__global__ void relax(float* data, int rounds) {
  __shared__ int iter;
  int tid = threadIdx.x;
  if (tid == 0) {
    iter = 0;
  }
  __syncthreads();
  do {
    data[tid] = data[tid] * 0.5f + 1.0f;
    __syncthreads();
    if (tid == 0) {
      iter = iter + 1;
    }
    __syncthreads();
  } while (iter < rounds);
}
void run(float* data, int rounds) {
  relax<<<1, 32>>>(data, rounds);
}
)";

TEST(E2ETest, WhileBarrierMatchesSimt) {
  std::vector<float> a(32), b(32);
  for (int i = 0; i < 32; ++i)
    a[i] = b[i] = static_cast<float>(i);
  runSimt(kWhileBarrierSrc, "run",
          {Executor::bufferF32(a.data(), {32}), int64_t(5)});
  runPipelineVariant(kWhileBarrierSrc, PipelineOptions{}, "run",
                     {Executor::bufferF32(b.data(), {32}), int64_t(5)});
  for (int i = 0; i < 32; ++i)
    EXPECT_NEAR(a[i], b[i], 1e-5) << i;
}

// OpenMP-dialect reference source (pragma-based) runs through the same
// pipeline tail.
const char *kOmpSrc = R"(
void scale(float* y, float* x, int n) {
  #pragma omp parallel for
  for (int i = 0; i < n; i++) {
    y[i] = 2.0f * x[i];
  }
}
)";

TEST(E2ETest, OmpPragmaSource) {
  int n = 50;
  std::vector<float> y(n, 0.0f), x(n);
  std::iota(x.begin(), x.end(), 1.0f);
  runPipelineVariant(kOmpSrc, PipelineOptions{}, "scale",
                     {Executor::bufferF32(y.data(), {n}),
                      Executor::bufferF32(x.data(), {n}), int64_t(n)});
  for (int i = 0; i < n; ++i)
    EXPECT_FLOAT_EQ(y[i], 2.0f * (i + 1));
}

// 2D launch with dim3 and 2D shared tile.
const char *kTransposeSrc = R"(
__global__ void transposeTile(float* out, float* in, int n) {
  __shared__ float tile[8][8];
  int x = blockIdx.x * 8 + threadIdx.x;
  int y = blockIdx.y * 8 + threadIdx.y;
  if (x < n && y < n) {
    tile[threadIdx.y][threadIdx.x] = in[y * n + x];
  }
  __syncthreads();
  int ox = blockIdx.y * 8 + threadIdx.x;
  int oy = blockIdx.x * 8 + threadIdx.y;
  if (ox < n && oy < n) {
    out[oy * n + ox] = tile[threadIdx.x][threadIdx.y];
  }
}
void run(float* out, float* in, int n) {
  int g = (n + 7) / 8;
  transposeTile<<<dim3(g, g), dim3(8, 8)>>>(out, in, n);
}
)";

TEST(E2ETest, TransposeDim3MatchesOracle) {
  int n = 20;
  std::vector<float> in(n * n), outSimt(n * n, -1.0f), outOpt(n * n, -1.0f);
  for (int i = 0; i < n * n; ++i)
    in[i] = static_cast<float>(i);
  runSimt(kTransposeSrc, "run",
          {Executor::bufferF32(outSimt.data(), {n * n}),
           Executor::bufferF32(in.data(), {n * n}), int64_t(n)});
  runPipelineVariant(kTransposeSrc, PipelineOptions{}, "run",
                     {Executor::bufferF32(outOpt.data(), {n * n}),
                      Executor::bufferF32(in.data(), {n * n}), int64_t(n)});
  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x) {
      EXPECT_FLOAT_EQ(outSimt[y * n + x], in[x * n + y]);
      EXPECT_FLOAT_EQ(outOpt[y * n + x], in[x * n + y]);
    }
}

// Scalar function results flow back through the VM.
const char *kScalarSrc = R"(
int triangle(int n) {
  int total = 0;
  for (int i = 1; i <= n; i++) {
    total += i;
  }
  return total;
}
)";

TEST(E2ETest, ScalarFunctionResult) {
  DiagnosticEngine diag;
  CompileResult cc = compile(kScalarSrc, PipelineOptions{}, diag);
  ASSERT_TRUE(cc.ok) << diag.str();
  Executor exec(cc.module.get(), 1);
  auto res = exec.run("triangle", {int64_t(10)});
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].i, 55);
}
