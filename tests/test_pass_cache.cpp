// PassResultCache tests: hit/miss/invalidation semantics (edit one
// function -> only its entries miss; change a pass option -> the
// downstream prefix misses), replay fidelity (cached compiles are
// IR-identical to uncached ones across the Rodinia suite, with zero
// transform pass executions on the second compile), disk persistence
// with corrupt-entry tolerance, and thread safety under --pm-threads.
#include "driver/compiler.h"
#include "frontend/irgen.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "rodinia/rodinia.h"
#include "support/failpoint.h"
#include "support/metrics.h"
#include "transforms/pass_cache.h"
#include "transforms/registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>
#include <unistd.h>

using namespace paralift;
using namespace paralift::ir;
using namespace paralift::transforms;

namespace {

OwnedModule parseOk(const std::string &text) {
  DiagnosticEngine diag;
  auto m = ir::parseModule(text, diag);
  EXPECT_TRUE(m.has_value()) << diag.str();
  return std::move(*m);
}

/// Two independent functions; g's loop body differs by the stored
/// constant so the "edit one function" scenarios can vary it.
std::string twoFuncModule(const char *gConst) {
  return std::string(R"(module {
  func {sym_name = "f", res_types = []} {
    [%0: memref<?xf32>]:
    %1 = const.int {value = 0} : index
    %2 = const.int {value = 4} : index
    %3 = const.int {value = 1} : index
    scf.for(%1, %2, %3) {
      [%4: index]:
      %5 = const.float {value = 1.0} : f32
      memref.store(%5, %0, %4)
      yield
    }
    return
  }
  func {sym_name = "g", res_types = []} {
    [%10: memref<?xf32>]:
    %11 = const.int {value = 0} : index
    %12 = const.int {value = 4} : index
    %13 = const.int {value = 1} : index
    scf.for(%11, %12, %13) {
      [%14: index]:
      %15 = const.float {value = )") +
         gConst + R"(} : f32
      memref.store(%15, %10, %14)
      yield
    }
    return
  }
})";
}

/// Runs `pipeline` over `m` with `cache`; returns printed IR.
std::string runCached(ModuleOp m, const std::string &pipeline,
                      PassResultCache *cache, unsigned threads = 1) {
  PassManager pm;
  DiagnosticEngine diag;
  EXPECT_TRUE(buildPipelineFromSpec(pm, pipeline, diag)) << diag.str();
  pm.setResultCache(cache);
  pm.setThreadCount(threads);
  EXPECT_TRUE(pm.run(m, diag)) << diag.str();
  return printOp(m.op);
}

std::string tempDir(const std::string &tag) {
  auto dir = std::filesystem::temp_directory_path() /
             ("paralift-cache-test-" + tag + "-" +
              std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir.string();
}

} // namespace

//===----------------------------------------------------------------------===//
// Hashing
//===----------------------------------------------------------------------===//

TEST(Hash128Test, HexRoundTrip) {
  Hash128 h = hashBytes("paralift");
  auto parsed = Hash128::fromHex(h.hex());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, h);
  EXPECT_FALSE(Hash128::fromHex("short").has_value());
  EXPECT_FALSE(
      Hash128::fromHex("zz345678901234567890123456789012").has_value());
  EXPECT_NE(hashBytes("a"), hashBytes("b"));
  EXPECT_NE(combineHash(hashBytes("a"), hashBytes("b")),
            combineHash(hashBytes("b"), hashBytes("a"))); // order matters
}

//===----------------------------------------------------------------------===//
// Basic replay
//===----------------------------------------------------------------------===//

TEST(PassCacheTest, SecondRunReplaysWithZeroExecutions) {
  const std::string pipeline = "canonicalize,cse,unroll{max-trip=4},"
                               "canonicalize";
  PassResultCache cache;
  OwnedModule m1 = parseOk(twoFuncModule("2.0"));
  std::string first = runCached(m1.get(), pipeline, &cache);
  auto s1 = cache.stats();
  EXPECT_EQ(s1.hits, 0u);
  EXPECT_EQ(s1.passesExecuted, 4u);
  EXPECT_EQ(s1.passesReplayed, 0u);
  EXPECT_EQ(s1.stores, 8u); // 4 passes x 2 funcs

  OwnedModule m2 = parseOk(twoFuncModule("2.0"));
  std::string second = runCached(m2.get(), pipeline, &cache);
  EXPECT_EQ(first, second);
  auto s2 = cache.stats();
  EXPECT_EQ(s2.passesExecuted, 4u); // unchanged: nothing re-ran
  EXPECT_EQ(s2.passesReplayed, 4u);
  EXPECT_EQ(s2.hits, 8u);
}

TEST(PassCacheTest, ReplayMatchesUncachedAcrossRodinia) {
  // Acceptance: the second compile of an unchanged Rodinia module through
  // the same pipeline executes zero transform passes and produces
  // IR identical to an uncached compile.
  for (const auto &b : rodinia::suite()) {
    DiagnosticEngine d0;
    auto uncached = driver::compile(b.cudaSource, PipelineOptions{}, d0);
    ASSERT_TRUE(uncached.ok) << b.id << ": " << d0.str();

    PassResultCache cache;
    transforms::PassRunConfig config;
    config.cache = &cache;
    DiagnosticEngine d1;
    auto warm = driver::compile(b.cudaSource, PipelineOptions{}, d1, config);
    ASSERT_TRUE(warm.ok) << b.id << ": " << d1.str();
    uint64_t executedCold = cache.stats().passesExecuted;

    DiagnosticEngine d2;
    auto replayed =
        driver::compile(b.cudaSource, PipelineOptions{}, d2, config);
    ASSERT_TRUE(replayed.ok) << b.id << ": " << d2.str();

    EXPECT_EQ(printOp(uncached.module.op()), printOp(replayed.module.op()))
        << b.id;
    EXPECT_EQ(cache.stats().passesExecuted, executedCold)
        << b.id << ": second compile executed transform passes";
    EXPECT_GT(cache.stats().passesReplayed, 0u) << b.id;
  }
}

//===----------------------------------------------------------------------===//
// Invalidation granularity
//===----------------------------------------------------------------------===//

TEST(PassCacheTest, EditingOneFunctionOnlyMissesItsEntries) {
  const std::string pipeline = "canonicalize,cse,unroll{max-trip=4}";
  PassResultCache cache;
  OwnedModule m1 = parseOk(twoFuncModule("2.0"));
  runCached(m1.get(), pipeline, &cache);
  cache.resetStats();

  // g's body changed; f is untouched. All of f's entries must hit, all
  // of g's must miss.
  OwnedModule m2 = parseOk(twoFuncModule("3.0"));
  runCached(m2.get(), pipeline, &cache);
  auto s = cache.stats();
  EXPECT_EQ(s.hits, 3u) << "f replays through all 3 passes";
  EXPECT_EQ(s.misses, 3u) << "g misses through all 3 passes";
  EXPECT_EQ(s.passesReplayed, 0u); // every pass still ran (on g)
  EXPECT_EQ(s.passesExecuted, 3u);
}

TEST(PassCacheTest, ChangingPassOptionMissesFromThatPassOn) {
  PassResultCache cache;
  // Same module through two pipelines differing only in unroll's option:
  // the shared prefix hits, the changed pass misses.
  OwnedModule m1 = parseOk(twoFuncModule("2.0"));
  runCached(m1.get(), "canonicalize,cse,unroll{max-trip=4},canonicalize",
            &cache);
  cache.resetStats();
  OwnedModule m2 = parseOk(twoFuncModule("2.0"));
  runCached(m2.get(), "canonicalize,cse,unroll{max-trip=2},canonicalize",
            &cache);
  auto s = cache.stats();
  // 2 funcs x (canonicalize, cse) hit; unroll{max-trip=2} is a new spec,
  // so both functions miss and the pass executes. It refuses the 4-trip
  // loops, so its output hash equals its input — and because keys chain
  // on content, the final canonicalize collapses onto the entry the
  // *first* canonicalize stored (the module was already canonical) and
  // replays: a downstream pass only misses while the IR actually
  // diverges.
  EXPECT_EQ(s.hits, 6u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.passesReplayed, 3u);
  EXPECT_EQ(s.passesExecuted, 1u);

  // With the pass that diverges for real (max-trip=4 vs 8-trip... use a
  // third option value that *does* change the IR differently), downstream
  // entries miss: max-trip=8 also unrolls but is a distinct spec, and its
  // identical output re-converges the final canonicalize onto run 1's
  // entry.
  cache.resetStats();
  OwnedModule m3 = parseOk(twoFuncModule("2.0"));
  runCached(m3.get(), "canonicalize,cse,unroll{max-trip=8},canonicalize",
            &cache);
  auto s3 = cache.stats();
  EXPECT_EQ(s3.misses, 2u); // only the unroll spec itself
  EXPECT_EQ(s3.passesExecuted, 1u);
}

TEST(PassCacheTest, VariantNameSharesEntriesWithCanonicalSpec) {
  // cpuify-nomincut normalizes to cpuify{mincut=false}: one entry pool.
  const char *kernel = R"(module {
  func {sym_name = "k", res_types = []} {
    [%0: memref<?xf32>]:
    %1 = const.int {value = 0} : index
    %2 = const.int {value = 8} : index
    %3 = const.int {value = 1} : index
    scf.parallel(%1, %2, %3) {dims = 1, gpu.block = true} {
      [%4: index]:
      %5 = memref.load(%0, %4) : f32
      memref.store(%5, %0, %4)
      yield
    }
    return
  }
})";
  PassResultCache cache;
  OwnedModule m1 = parseOk(kernel);
  runCached(m1.get(), "cpuify{mincut=false}", &cache);
  cache.resetStats();
  OwnedModule m2 = parseOk(kernel);
  runCached(m2.get(), "cpuify-nomincut", &cache);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

//===----------------------------------------------------------------------===//
// Module passes and repeat
//===----------------------------------------------------------------------===//

TEST(PassCacheTest, ModulePassCachesWholeModule) {
  const std::string pipeline = "inline,canonicalize";
  const char *src = R"(module {
  func {sym_name = "callee", res_types = []} {
    [%0: memref<?xf32>, %1: index]:
    %2 = memref.load(%0, %1) : f32
    %3 = addf(%2, %2) : f32
    memref.store(%3, %0, %1)
    return
  }
  func {sym_name = "caller", res_types = []} {
    [%10: memref<?xf32>, %11: index]:
    call(%10, %11) {callee = "callee"}
    return
  }
})";
  PassResultCache cache;
  OwnedModule m1 = parseOk(src);
  std::string first = runCached(m1.get(), pipeline, &cache);
  OwnedModule m2 = parseOk(src);
  std::string second = runCached(m2.get(), pipeline, &cache);
  EXPECT_EQ(first, second);
  auto s = cache.stats();
  EXPECT_EQ(s.passesReplayed, 2u); // inline (module) + canonicalize
  EXPECT_EQ(second.find("call("), std::string::npos)
      << "call sites were inlined: " << second;
}

TEST(PassCacheTest, RepeatCachesAsOneUnit) {
  PassResultCache cache;
  OwnedModule m1 = parseOk(twoFuncModule("2.0"));
  runCached(m1.get(), "repeat{n=3}(canonicalize,cse)", &cache);
  auto s1 = cache.stats();
  EXPECT_EQ(s1.stores, 2u); // one entry per function for the whole repeat
  OwnedModule m2 = parseOk(twoFuncModule("2.0"));
  runCached(m2.get(), "repeat{n=3}(canonicalize,cse)", &cache);
  EXPECT_EQ(cache.stats().passesReplayed, 1u);
  // A different n is a different spec: no sharing.
  cache.resetStats();
  OwnedModule m3 = parseOk(twoFuncModule("2.0"));
  runCached(m3.get(), "repeat{n=2}(canonicalize,cse)", &cache);
  EXPECT_EQ(cache.stats().hits, 0u);
}

//===----------------------------------------------------------------------===//
// Disk persistence
//===----------------------------------------------------------------------===//

TEST(PassCacheTest, DiskCacheSurvivesProcessesAndRejectsCorruption) {
  std::string dir = tempDir("disk");
  const std::string pipeline = "canonicalize,cse,unroll{max-trip=4}";
  {
    PassResultCache cache(dir);
    OwnedModule m = parseOk(twoFuncModule("2.0"));
    runCached(m.get(), pipeline, &cache);
    EXPECT_GT(cache.stats().stores, 0u);
  }
  // A fresh cache instance (fresh memory) over the same directory
  // replays everything from disk.
  {
    PassResultCache cache(dir);
    OwnedModule m = parseOk(twoFuncModule("2.0"));
    OwnedModule reference = parseOk(twoFuncModule("2.0"));
    DiagnosticEngine diag;
    ASSERT_TRUE(runPassPipeline(reference.get(), pipeline, diag));
    EXPECT_EQ(runCached(m.get(), pipeline, &cache), printOp(reference.op()));
    auto s = cache.stats();
    EXPECT_EQ(s.misses, 0u);
    EXPECT_EQ(s.diskHits, s.hits);
    EXPECT_EQ(s.passesExecuted, 0u);
  }
  // Corrupt every entry: lookups must degrade to misses, recompute, and
  // still produce correct IR.
  for (auto &e : std::filesystem::directory_iterator(dir)) {
    std::ofstream out(e.path(), std::ios::trunc);
    out << "garbage";
  }
  {
    PassResultCache cache(dir);
    OwnedModule m = parseOk(twoFuncModule("2.0"));
    OwnedModule reference = parseOk(twoFuncModule("2.0"));
    DiagnosticEngine diag;
    ASSERT_TRUE(runPassPipeline(reference.get(), pipeline, diag));
    EXPECT_EQ(runCached(m.get(), pipeline, &cache), printOp(reference.op()));
    auto s = cache.stats();
    EXPECT_EQ(s.hits, 0u);
    EXPECT_GT(s.misses, 0u);
  }
  std::filesystem::remove_all(dir);
}

TEST(PassCacheTest, UnwritableDirectoryDegradesToMemoryOnly) {
  PassResultCache cache("/proc/definitely-not-writable/cache");
  EXPECT_TRUE(cache.directory().empty());
  OwnedModule m = parseOk(twoFuncModule("2.0"));
  runCached(m.get(), "canonicalize", &cache);
  EXPECT_GT(cache.stats().stores, 0u); // memory path still works
}

//===----------------------------------------------------------------------===//
// Thread safety
//===----------------------------------------------------------------------===//

namespace {

/// CUDA-subset source with many independent kernels so --pm-threads has
/// real fan-out against one shared cache.
std::string manyKernelSource() {
  std::string src;
  for (int k = 0; k < 8; ++k) {
    std::string n = std::to_string(k);
    src += "__global__ void kern" + n + "(float* a, float* b, int n) {\n"
           "  int i = blockIdx.x * blockDim.x + threadIdx.x;\n"
           "  if (i < n) {\n"
           "    float x = a[i] * " + std::to_string(k + 2) + ".0f;\n"
           "    float y = a[i] * " + std::to_string(k + 2) + ".0f;\n"
           "    b[i] = x + y;\n"
           "  }\n"
           "}\n"
           "void launch" + n + "(float* a, float* b, int n) {\n"
           "  kern" + n + "<<<(n + 63) / 64, 64>>>(a, b, n);\n"
           "}\n";
  }
  return src;
}

} // namespace

TEST(PassCacheTest, ThreadSafeUnderPmThreads) {
  std::string src = manyKernelSource();
  DiagnosticEngine d0;
  auto reference = driver::compile(src, PipelineOptions{}, d0);
  ASSERT_TRUE(reference.ok) << d0.str();
  std::string golden = printOp(reference.module.op());

  std::string dir = tempDir("threads");
  PassResultCache cache(dir);
  transforms::PassRunConfig config;
  config.cache = &cache;
  config.threads = 4;
  // Cold populate and warm replay, both under parallel scheduling, both
  // IR-identical to the serial uncached compile.
  for (int round = 0; round < 2; ++round) {
    DiagnosticEngine diag;
    auto cc = driver::compile(src, PipelineOptions{}, diag, config);
    ASSERT_TRUE(cc.ok) << diag.str();
    EXPECT_EQ(printOp(cc.module.op()), golden) << "round " << round;
  }
  EXPECT_GT(cache.stats().passesReplayed, 0u);
  std::filesystem::remove_all(dir);
}

//===----------------------------------------------------------------------===//
// Disk LRU eviction (--cache-limit / PARALIFT_CACHE_LIMIT)
//===----------------------------------------------------------------------===//

TEST(PassCacheTest, DiskLimitEvictsOldestMtimeFirst) {
  std::string dir = tempDir("evict");
  uint64_t entryBytes = 0;
  {
    PassResultCache cache(dir);
    // Four entries, mtimes spread far apart so ordering is unambiguous
    // regardless of filesystem timestamp granularity.
    for (int i = 0; i < 4; ++i) {
      std::string ir = "func " + std::to_string(i) + "\n";
      cache.store(hashBytes("input" + std::to_string(i)), "canonicalize",
                  ir, hashBytes(ir));
    }
    std::vector<std::filesystem::path> files;
    for (const auto &e : std::filesystem::directory_iterator(dir))
      files.push_back(e.path());
    ASSERT_EQ(files.size(), 4u);
    entryBytes = std::filesystem::file_size(files[0]);
    // Filenames are key hashes (unordered); back-date by directory
    // iteration order, recording which basenames got the oldest stamps.
    auto now = std::filesystem::file_time_type::clock::now();
    int k = 0;
    std::vector<std::string> oldest;
    for (const auto &f : files) {
      std::filesystem::last_write_time(f, now - std::chrono::hours(4 - k));
      if (k < 2)
        oldest.push_back(f.filename().string());
      ++k;
    }
    // Keep ~2 entries: the sweep must drop exactly the two back-dated
    // furthest and keep the rest.
    cache.setDiskLimitBytes(2 * entryBytes + entryBytes / 2);
    auto ev = cache.evictToDiskLimit();
    EXPECT_EQ(ev.filesRemoved, 2u);
    EXPECT_LE(ev.bytesRemaining, 2 * entryBytes + entryBytes / 2);
    for (const std::string &name : oldest)
      EXPECT_FALSE(std::filesystem::exists(
          std::filesystem::path(dir) / name))
          << name << " should have been evicted first";
  }
  size_t remaining = 0;
  for (const auto &e : std::filesystem::directory_iterator(dir)) {
    (void)e;
    ++remaining;
  }
  EXPECT_EQ(remaining, 2u);
  std::filesystem::remove_all(dir);
}

TEST(PassCacheTest, DestructorSweepsToLimit) {
  std::string dir = tempDir("evict-dtor");
  {
    PassResultCache cache(dir);
    for (int i = 0; i < 6; ++i) {
      std::string ir = "func " + std::to_string(i) + "\n";
      cache.store(hashBytes("in" + std::to_string(i)), "cse", ir,
                  hashBytes(ir));
    }
    // A limit below one entry's size: shutdown keeps at most one file.
    cache.setDiskLimitBytes(1);
  } // destructor sweeps
  size_t remaining = 0;
  for (const auto &e : std::filesystem::directory_iterator(dir)) {
    (void)e;
    ++remaining;
  }
  EXPECT_LE(remaining, 1u);
  std::filesystem::remove_all(dir);
}

TEST(PassCacheTest, NoLimitMeansNoEviction) {
  std::string dir = tempDir("evict-off");
  PassResultCache cache(dir);
  std::string ir = "func\n";
  cache.store(hashBytes("in"), "cse", ir, hashBytes(ir));
  auto ev = cache.evictToDiskLimit();
  EXPECT_EQ(ev.filesRemoved, 0u);
  size_t remaining = 0;
  for (const auto &e : std::filesystem::directory_iterator(dir)) {
    (void)e;
    ++remaining;
  }
  EXPECT_EQ(remaining, 1u);
  std::filesystem::remove_all(dir);
}

//===----------------------------------------------------------------------===//
// Non-finite / denormal float attributes through a cache round trip
//===----------------------------------------------------------------------===//

TEST(PassCacheTest, NonFiniteAttrsSurviveCacheReplay) {
  // Every printable double edge case the printer emits special spellings
  // for: ±inf, nan, -nan, signed zero, and a denormal (whose spelling
  // used to crash replay — std::stod raises out_of_range on 4.9e-324).
  const char *src = R"(module {
  func {sym_name = "edge", res_types = []} {
    [%0: memref<?xf64>, %1: index]:
    %2 = const.float {value = inf} : f64
    %3 = const.float {value = -inf} : f64
    %4 = const.float {value = nan} : f64
    %5 = const.float {value = -nan} : f64
    %6 = const.float {value = -0.0} : f64
    %7 = const.float {value = 4.9406564584124654e-324} : f64
    memref.store(%2, %0, %1)
    memref.store(%3, %0, %1)
    memref.store(%4, %0, %1)
    memref.store(%5, %0, %1)
    memref.store(%6, %0, %1)
    memref.store(%7, %0, %1)
    return
  }
})";
  const std::string pipeline = "canonicalize,cse";
  OwnedModule reference = parseOk(src);
  DiagnosticEngine refDiag;
  ASSERT_TRUE(runPassPipeline(reference.get(), pipeline, refDiag))
      << refDiag.str();
  std::string golden = printOp(reference.op());

  std::string dir = tempDir("nonfinite");
  {
    PassResultCache cache(dir);
    OwnedModule m = parseOk(src);
    EXPECT_EQ(runCached(m.get(), pipeline, &cache), golden);
  }
  // Fresh cache instance over the same dir: the replay must re-parse the
  // stored text (which spells inf/nan/-0.0/denormals) instead of failing
  // with "cached IR failed to re-parse" — or crashing.
  {
    PassResultCache cache(dir);
    OwnedModule m = parseOk(src);
    EXPECT_EQ(runCached(m.get(), pipeline, &cache), golden);
    auto s = cache.stats();
    EXPECT_EQ(s.misses, 0u);
    EXPECT_EQ(s.passesExecuted, 0u);
  }
  std::filesystem::remove_all(dir);
}

//===----------------------------------------------------------------------===//
// Key determinism across cache instances (structural-hash guarantee)
//===----------------------------------------------------------------------===//

TEST(PassCacheTest, KeysDeterministicAcrossCacheInstances) {
  // Fresh cache instance + fresh module objects over one disk dir models
  // a second process: every key must reproduce exactly (no pointer or
  // iteration-order input), so the second run reports zero misses and
  // zero executed passes. The pipeline includes a module pass (inline)
  // to cover the folded module-level keys, and a repeat composite.
  const char *src = R"(module {
  func {sym_name = "callee", res_types = []} {
    [%0: memref<?xf32>, %1: index]:
    %2 = memref.load(%0, %1) : f32
    %3 = addf(%2, %2) : f32
    memref.store(%3, %0, %1)
    return
  }
  func {sym_name = "caller", res_types = []} {
    [%10: memref<?xf32>, %11: index]:
    call(%10, %11) {callee = "callee"}
    return
  }
})";
  const std::string pipeline =
      "inline,repeat{n=2}(canonicalize,cse),unroll{max-trip=4}";
  std::string dir = tempDir("determinism");
  std::string first;
  {
    PassResultCache cache(dir);
    OwnedModule m = parseOk(src);
    first = runCached(m.get(), pipeline, &cache);
    EXPECT_GT(cache.stats().stores, 0u);
  }
  {
    PassResultCache cache(dir);
    OwnedModule m = parseOk(src);
    EXPECT_EQ(runCached(m.get(), pipeline, &cache), first);
    auto s = cache.stats();
    EXPECT_EQ(s.misses, 0u) << "a cache key failed to reproduce";
    EXPECT_EQ(s.passesExecuted, 0u);
    EXPECT_EQ(s.hits, s.diskHits) << "all hits must come from disk";
  }
  std::filesystem::remove_all(dir);
}

//===----------------------------------------------------------------------===//
// Mid-run disk eviction (long-lived sessions must not outgrow the limit)
//===----------------------------------------------------------------------===//

TEST(PassCacheTest, StoresSweepTheDiskLimitMidRun) {
  std::string dir = tempDir("midrun-evict");
  auto dirBytes = [&] {
    uint64_t total = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir))
      total += std::filesystem::file_size(e.path());
    return total;
  };
  const uint64_t limit = 4096;
  uint64_t written = 0;
  {
    PassResultCache cache(dir);
    cache.setDiskLimitBytes(limit);
    // Far more entry bytes than the limit, without destroying the cache:
    // the store path itself must keep the directory bounded (~1.5x the
    // limit plus the writes since the last threshold crossing).
    for (int i = 0; i < 60; ++i) {
      std::string ir(400, 'a' + (i % 26));
      written += ir.size();
      cache.store(hashBytes("in" + std::to_string(i)), "canonicalize",
                  ir, hashBytes(ir));
      EXPECT_LE(dirBytes(), 3 * limit) << "store " << i;
    }
    ASSERT_GT(written, 3 * limit) << "test must overflow the limit";
    size_t files = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir)) {
      (void)e;
      ++files;
    }
    EXPECT_LT(files, 60u) << "no mid-run sweep ever ran";
  }
  std::filesystem::remove_all(dir);
}

//===----------------------------------------------------------------------===//
// Mixed lazy/eager replay (per-pass inspectsIR)
//===----------------------------------------------------------------------===//

TEST(PassCacheTest, MidPipelineInspectionSeesRealIRAndKeepsReplay) {
  // A filtered IR printer watches only "cse": passes around it replay
  // lazily (pending text), cse itself is inspected — the pass manager
  // must materialize pending replays before it and must not let a stale
  // pending entry overwrite the spliced result afterwards.
  const std::string pipeline = "canonicalize,cse,canonicalize";
  OwnedModule goldenModule = parseOk(twoFuncModule("2.0"));
  DiagnosticEngine goldenDiag;
  ASSERT_TRUE(runPassPipeline(goldenModule.get(), pipeline, goldenDiag));
  std::string golden = printOp(goldenModule.op());
  // The intermediate state the instrumentation should observe after cse.
  OwnedModule midModule = parseOk(twoFuncModule("2.0"));
  DiagnosticEngine midDiag;
  ASSERT_TRUE(runPassPipeline(midModule.get(), "canonicalize,cse", midDiag));
  std::string afterCse = printOp(midModule.op());

  PassResultCache cache;
  {
    OwnedModule m = parseOk(twoFuncModule("2.0"));
    EXPECT_EQ(runCached(m.get(), pipeline, &cache), golden);
  }
  cache.resetStats();

  std::FILE *capture = std::tmpfile();
  ASSERT_NE(capture, nullptr);
  PassManager pm;
  DiagnosticEngine diag;
  ASSERT_TRUE(buildPipelineFromSpec(pm, pipeline, diag)) << diag.str();
  pm.setResultCache(&cache);
  pm.enableIRPrinting(/*before=*/false, /*after=*/true, "cse", capture);
  OwnedModule m = parseOk(twoFuncModule("2.0"));
  ASSERT_TRUE(pm.run(m.get(), diag)) << diag.str();

  // Fully replayed despite the mid-pipeline inspection...
  auto s = cache.stats();
  EXPECT_EQ(s.passesExecuted, 0u);
  EXPECT_EQ(s.passesReplayed, 3u);
  // ...final IR is the cse result carried through, not a stale pending
  // splice from the earlier lazy hit...
  EXPECT_EQ(printOp(m.op()), golden);
  // ...and the instrumentation saw the real post-cse module, not the
  // pre-canonicalize IR the lazy replay had left unspliced.
  std::fflush(capture);
  std::rewind(capture);
  std::string printed;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), capture)) > 0)
    printed.append(buf, n);
  std::fclose(capture);
  EXPECT_NE(printed.find("IR after pass 'cse'"), std::string::npos)
      << printed;
  EXPECT_NE(printed.find(afterCse), std::string::npos)
      << "instrumentation printed stale IR:\n"
      << printed;
}

//===----------------------------------------------------------------------===//
// Disk fault matrix: corruption and IO-pressure scenarios, injected via
// failpoints. The contract everywhere: a damaged or failing disk layer
// yields a miss (recompute, correct IR) or a clean demotion to
// memory-only — never a wrong replay, never a crash.
//===----------------------------------------------------------------------===//

namespace {

struct FailpointGuard {
  ~FailpointGuard() { paralift::failpoint::clearAll(); }
};

uint64_t counterVal(const std::string &name) {
  return paralift::metrics::MetricsRegistry::instance().counterValue(name);
}

} // namespace

TEST(DiskFaultTest, TruncatedEntryIsAMissNotWrongReplay) {
  std::string dir = tempDir("fault-trunc");
  const std::string pipeline = "canonicalize,cse";
  {
    PassResultCache cache(dir);
    OwnedModule m = parseOk(twoFuncModule("2.0"));
    runCached(m.get(), pipeline, &cache);
  }
  // Chop every entry in half: the header parses but the payload hash no
  // longer matches (or the payload is cut mid-record).
  for (auto &e : std::filesystem::directory_iterator(dir)) {
    auto size = std::filesystem::file_size(e.path());
    std::filesystem::resize_file(e.path(), size / 2);
  }
  {
    PassResultCache cache(dir);
    OwnedModule m = parseOk(twoFuncModule("2.0"));
    OwnedModule reference = parseOk(twoFuncModule("2.0"));
    DiagnosticEngine diag;
    ASSERT_TRUE(runPassPipeline(reference.get(), pipeline, diag));
    EXPECT_EQ(runCached(m.get(), pipeline, &cache), printOp(reference.op()));
    EXPECT_EQ(cache.stats().hits, 0u);
    // Corrupt *content* is a plain miss; only IO errors demote.
    EXPECT_FALSE(cache.diskDemoted());
  }
  std::filesystem::remove_all(dir);
}

TEST(DiskFaultTest, GarbageHeaderIsAMissNotWrongReplay) {
  std::string dir = tempDir("fault-header");
  const std::string pipeline = "canonicalize,cse";
  {
    PassResultCache cache(dir);
    OwnedModule m = parseOk(twoFuncModule("2.0"));
    runCached(m.get(), pipeline, &cache);
  }
  // Keep each entry's size but destroy its header line.
  for (auto &e : std::filesystem::directory_iterator(dir)) {
    std::fstream f(e.path(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.write("XXXXXXXXXXXXXXXX", 16);
  }
  {
    PassResultCache cache(dir);
    OwnedModule m = parseOk(twoFuncModule("2.0"));
    OwnedModule reference = parseOk(twoFuncModule("2.0"));
    DiagnosticEngine diag;
    ASSERT_TRUE(runPassPipeline(reference.get(), pipeline, diag));
    EXPECT_EQ(runCached(m.get(), pipeline, &cache), printOp(reference.op()));
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_FALSE(cache.diskDemoted());
  }
  std::filesystem::remove_all(dir);
}

TEST(DiskFaultTest, PartialWriteIsCaughtOnReadBack) {
  FailpointGuard guard;
  std::string dir = tempDir("fault-partial");
  const std::string pipeline = "canonicalize,cse";
  std::string err;
  // Every store is cut short mid-write, as if the process died or the
  // filesystem lost the tail. The writer doesn't notice.
  ASSERT_TRUE(
      paralift::failpoint::configure("cache.disk.write=partial-write", &err))
      << err;
  {
    PassResultCache cache(dir);
    OwnedModule m = parseOk(twoFuncModule("2.0"));
    runCached(m.get(), pipeline, &cache);
    EXPECT_FALSE(cache.diskDemoted()); // a short write is not an IO error
  }
  paralift::failpoint::clearAll();
  // Read-back must reject every damaged entry: a miss and a correct
  // recompute, never a replay of the torn payload.
  {
    PassResultCache cache(dir);
    OwnedModule m = parseOk(twoFuncModule("2.0"));
    OwnedModule reference = parseOk(twoFuncModule("2.0"));
    DiagnosticEngine diag;
    ASSERT_TRUE(runPassPipeline(reference.get(), pipeline, diag));
    EXPECT_EQ(runCached(m.get(), pipeline, &cache), printOp(reference.op()));
    EXPECT_EQ(cache.stats().diskHits, 0u);
  }
  std::filesystem::remove_all(dir);
}

TEST(DiskFaultTest, WriteErrorsRetryThenDemoteToMemoryOnly) {
  FailpointGuard guard;
  std::string dir = tempDir("fault-enospc");
  std::string err;
  // Persistent write failure (ENOSPC-style): the first store retries
  // once, then the cache demotes itself to memory-only for good.
  ASSERT_TRUE(paralift::failpoint::configure("cache.disk.write=error", &err))
      << err;
  uint64_t disabledBefore = counterVal("cache.disk.disabled");
  PassResultCache cache(dir);
  OwnedModule m1 = parseOk(twoFuncModule("2.0"));
  std::string first = runCached(m1.get(), "canonicalize,cse", &cache);
  EXPECT_TRUE(cache.diskDemoted());
  EXPECT_EQ(counterVal("cache.disk.disabled"), disabledBefore + 1);
  // The memory tier is untouched: an identical module replays from it
  // with zero pass executions, and the IR still matches.
  uint64_t executedAfterFirst = cache.stats().passesExecuted;
  OwnedModule m2 = parseOk(twoFuncModule("2.0"));
  EXPECT_EQ(runCached(m2.get(), "canonicalize,cse", &cache), first);
  EXPECT_EQ(cache.stats().passesExecuted, executedAfterFirst);
  std::filesystem::remove_all(dir);
}

TEST(DiskFaultTest, ReadErrorsRetryThenDemoteToMemoryOnly) {
  FailpointGuard guard;
  std::string dir = tempDir("fault-readerr");
  const std::string pipeline = "canonicalize,cse";
  {
    PassResultCache cache(dir); // populate the directory fault-free
    OwnedModule m = parseOk(twoFuncModule("2.0"));
    runCached(m.get(), pipeline, &cache);
  }
  std::string err;
  ASSERT_TRUE(paralift::failpoint::configure("cache.disk.read=error", &err))
      << err;
  PassResultCache cache(dir);
  OwnedModule m = parseOk(twoFuncModule("2.0"));
  OwnedModule reference = parseOk(twoFuncModule("2.0"));
  DiagnosticEngine diag;
  ASSERT_TRUE(runPassPipeline(reference.get(), pipeline, diag));
  EXPECT_EQ(runCached(m.get(), pipeline, &cache), printOp(reference.op()));
  EXPECT_TRUE(cache.diskDemoted());
  EXPECT_EQ(cache.stats().diskHits, 0u);
  std::filesystem::remove_all(dir);
}

TEST(DiskFaultTest, EvictionRacingStoresIsSafe) {
  std::string dir = tempDir("fault-evict-race");
  const std::string pipeline = "canonicalize,cse";
  PassResultCache cache(dir);
  cache.setDiskLimitBytes(1); // every sweep wants to remove everything
  std::atomic<bool> stop{false};
  std::thread evictor([&] {
    while (!stop.load())
      cache.evictToDiskLimit();
  });
  // Stores race the sweeping evictor: each entry either lands and is
  // later evicted, or is gone by the time a lookup probes it — a miss,
  // never a torn replay or a crash.
  for (int i = 0; i < 16; ++i) {
    OwnedModule m =
        parseOk(twoFuncModule((std::to_string(i) + ".0").c_str()));
    OwnedModule reference =
        parseOk(twoFuncModule((std::to_string(i) + ".0").c_str()));
    DiagnosticEngine diag;
    ASSERT_TRUE(runPassPipeline(reference.get(), pipeline, diag));
    EXPECT_EQ(runCached(m.get(), pipeline, &cache), printOp(reference.op()));
  }
  stop.store(true);
  evictor.join();
  EXPECT_FALSE(cache.diskDemoted()); // eviction pressure is not an IO fault
  std::filesystem::remove_all(dir);
}
