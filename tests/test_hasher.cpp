// Structural IR hashing (ir::hashOp) tests. The load-bearing property is
// *differential*: hashOp must distinguish exactly what ir::printOp
// distinguishes — equal printed text implies equal hash (clones, fresh
// parses, replayed cache splices key identically), and distinct printed
// text implies distinct hash (no false cache hits). Verified across the
// Rodinia suite (frontend output and fully optimized output), a matrix
// of single mutations, and the double-attribute edge cases the printer
// collapses (NaN payloads) or keeps distinct (-0.0, -nan).
#include "driver/compiler.h"
#include "frontend/irgen.h"
#include "ir/hasher.h"
#include "ir/ophelpers.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "rodinia/rodinia.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <vector>

using namespace paralift;
using namespace paralift::ir;

namespace {

OwnedModule parseOk(const std::string &text) {
  DiagnosticEngine diag;
  auto m = ir::parseModule(text, diag);
  EXPECT_TRUE(m.has_value()) << diag.str();
  return std::move(*m);
}

/// Asserts the differential property over a corpus: for every pair of
/// ops, hash equality must coincide with printed-text equality. Checked
/// via two maps instead of O(n^2) pairs.
class DifferentialChecker {
public:
  void add(Op *op, const std::string &label) {
    std::string text = printOp(op);
    std::string hash = hashOp(op).hex();
    auto byText = textToHash_.emplace(text, hash);
    EXPECT_EQ(byText.first->second, hash)
        << label << ": same printed text, different hash";
    auto byHash = hashToText_.emplace(hash, text);
    EXPECT_EQ(byHash.first->second, text)
        << label << ": hash collision between distinct printed texts";
    ++count_;
  }
  size_t count() const { return count_; }

private:
  std::map<std::string, std::string> textToHash_;
  std::map<std::string, std::string> hashToText_;
  size_t count_ = 0;
};

const char *kBase = R"(module {
  func {sym_name = "m", res_types = []} {
    [%0: memref<4x?xf32>, %1: index]:
    %2 = const.int {value = 7} : i32
    %3 = const.float {value = 1.5} : f64
    %4 = const.int {value = 3} : index
    %5 = memref.load(%0, %1, %4) : f32
    %6 = addf(%5, %5) : f32
    memref.store(%6, %0, %1, %4)
    scf.for(%4, %1, %4) {
      [%7: index]:
      %8 = muli(%7, %7) : index
      yield
    }
    return
  }
})";

double nanWithPayload(uint64_t payload) {
  uint64_t bits = 0x7ff8000000000000ull | (payload & 0xfffffffffffffull);
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

/// First op of the first func's body (the const.int).
Op *firstBodyOp(ModuleOp m) {
  return FuncOp(m.body().front()).body().front();
}

} // namespace

//===----------------------------------------------------------------------===//
// Equality side: identical print => identical hash
//===----------------------------------------------------------------------===//

TEST(HasherTest, CloneAndReparseHashIdentically) {
  OwnedModule m = parseOk(kBase);
  Hash128 h = hashOp(m.op());
  // Clone: fresh Op/ValueImpl addresses, same structure.
  OwnedModule clone = cloneModule(m.get());
  EXPECT_EQ(hashOp(clone.op()), h);
  // Print -> parse: a replayed cache splice keys like the original.
  OwnedModule reparsed = parseOk(printOp(m.op()));
  EXPECT_EQ(hashOp(reparsed.op()), h);
  // Per-function hashes agree too.
  EXPECT_EQ(hashOp(m.get().body().front()),
            hashOp(clone.get().body().front()));
}

TEST(HasherTest, HashIsDeterministicAcrossCalls) {
  OwnedModule m = parseOk(kBase);
  EXPECT_EQ(hashOp(m.op()), hashOp(m.op()));
}

TEST(HasherTest, NanPayloadsCollapseLikeThePrinter) {
  OwnedModule a = parseOk(kBase);
  OwnedModule b = parseOk(kBase);
  // Different payload bits; the printer renders both as "nan", so the
  // hashes must agree (hashing raw bits would shatter warm-cache keys
  // for any module carrying a NaN attribute).
  firstBodyOp(a.get())->attrs().set("value", nanWithPayload(0x1));
  firstBodyOp(b.get())->attrs().set("value", nanWithPayload(0xbeef));
  ASSERT_EQ(printOp(a.op()), printOp(b.op()));
  EXPECT_EQ(hashOp(a.op()), hashOp(b.op()));
  // A sign flip prints differently ("-nan") and must hash differently.
  firstBodyOp(b.get())->attrs().set(
      "value", std::copysign(nanWithPayload(0x1), -1.0));
  ASSERT_NE(printOp(a.op()), printOp(b.op()));
  EXPECT_NE(hashOp(a.op()), hashOp(b.op()));
}

TEST(HasherTest, SignedZeroAndNonFiniteAttrsDistinguish) {
  DifferentialChecker check;
  const double values[] = {0.0,
                           -0.0,
                           1.5,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN(),
                           4.9406564584124654e-324, // smallest denormal
                           1e308};
  OwnedModule m = parseOk(kBase);
  for (double v : values) {
    firstBodyOp(m.get())->attrs().set("value", v);
    check.add(m.op(), "value attr " + std::to_string(v));
  }
  EXPECT_EQ(check.count(), std::size(values));
}

//===----------------------------------------------------------------------===//
// Inequality side: every single mutation that changes the printed text
// changes the hash
//===----------------------------------------------------------------------===//

TEST(HasherTest, SingleMutationsAllDistinguish) {
  // Each variant differs from kBase in exactly one structural aspect.
  const std::pair<const char *, const char *> mutations[] = {
      {"int attr value", "{value = 7}"},
      {"float attr value", "{value = 1.5}"},
      {"op kind", "addf(%5, %5)"},
      {"operand order", "memref.store(%6, %0, %1, %4)"},
      {"result type", "%2 = const.int {value = 7} : i32"},
      {"block arg type", "[%0: memref<4x?xf32>, %1: index]:"},
      {"memref shape", "memref<4x?xf32>"},
      {"sym name", "sym_name = \"m\""},
      {"extra op", "%8 = muli(%7, %7) : index"},
  };
  const std::pair<const char *, const char *> replacements[] = {
      {"{value = 7}", "{value = 8}"},
      {"{value = 1.5}", "{value = 1.25}"},
      {"addf(%5, %5)", "mulf(%5, %5)"},
      {"memref.store(%6, %0, %1, %4)", "memref.store(%6, %0, %4, %1)"},
      {"%2 = const.int {value = 7} : i32",
       "%2 = const.int {value = 7} : i64"},
      {"[%0: memref<4x?xf32>, %1: index]:",
       "[%0: memref<4x?xf64>, %1: index]:"},
      {"memref<4x?xf32>", "memref<8x?xf32>"},
      {"sym_name = \"m\"", "sym_name = \"m2\""},
      {"%8 = muli(%7, %7) : index",
       "%8 = muli(%7, %7) : index\n      %9 = addi(%8, %7) : index"},
  };
  static_assert(std::size(mutations) == std::size(replacements));

  DifferentialChecker check;
  OwnedModule base = parseOk(kBase);
  check.add(base.op(), "base");
  Hash128 baseHash = hashOp(base.op());
  for (size_t i = 0; i < std::size(replacements); ++i) {
    std::string text = kBase;
    size_t pos = text.find(replacements[i].first);
    ASSERT_NE(pos, std::string::npos) << mutations[i].first;
    text.replace(pos, std::strlen(replacements[i].first),
                 replacements[i].second);
    OwnedModule variant = parseOk(text);
    check.add(variant.op(), mutations[i].first);
    EXPECT_NE(hashOp(variant.op()), baseHash)
        << "mutation not distinguished: " << mutations[i].first;
  }
}

TEST(HasherTest, AttrOrderAndPresenceDistinguish) {
  // AttrMap is ordered and the printer renders it in order.
  OwnedModule a = parseOk(kBase);
  OwnedModule b = parseOk(kBase);
  firstBodyOp(a.get())->attrs().set("extra", true);
  Op *bOp = firstBodyOp(b.get());
  int64_t v = bOp->attrs().getInt("value");
  bOp->attrs().erase("value");
  bOp->attrs().set("extra", true);
  bOp->attrs().set("value", v);
  ASSERT_NE(printOp(a.op()), printOp(b.op()));
  EXPECT_NE(hashOp(a.op()), hashOp(b.op()));
  // Variant tags: int 1 vs bool true vs [1] vs "1" all print (and must
  // hash) differently.
  DifferentialChecker check;
  for (AttrValue val :
       {AttrValue(int64_t{1}), AttrValue(true), AttrValue(std::string("1")),
        AttrValue(std::vector<int64_t>{1})}) {
    firstBodyOp(a.get())->attrs().set("extra", val);
    check.add(a.op(), "attr variant");
  }
  EXPECT_EQ(check.count(), 4u);
}

//===----------------------------------------------------------------------===//
// Rodinia differential sweep (acceptance)
//===----------------------------------------------------------------------===//

TEST(HasherTest, DifferentialAcrossRodiniaSuite) {
  DifferentialChecker check;
  for (const auto &b : rodinia::suite()) {
    DiagnosticEngine diag;
    OwnedModule frontendOut = frontend::compileToIR(b.cudaSource, diag);
    if (diag.hasErrors())
      continue;
    check.add(frontendOut.op(), b.id + " (frontend)");
    for (Op *op : frontendOut.get().body())
      if (op->kind() == OpKind::Func)
        check.add(op, b.id + " func (frontend)");
    // The fully optimized module exercises every op kind the pipeline
    // can produce (omp dialect, fissioned loops, subviews, ...).
    DiagnosticEngine cdiag;
    auto compiled = driver::compile(b.cudaSource, transforms::PipelineOptions{},
                                    cdiag);
    if (!compiled.ok)
      continue;
    check.add(compiled.module.op(), b.id + " (optimized)");
    for (Op *op : compiled.module.get().body())
      if (op->kind() == OpKind::Func)
        check.add(op, b.id + " func (optimized)");
    // And the frontend output's clone + reparse key identically.
    OwnedModule clone = cloneModule(frontendOut.get());
    check.add(clone.op(), b.id + " (clone)");
    OwnedModule reparsed = parseOk(printOp(frontendOut.op()));
    check.add(reparsed.op(), b.id + " (reparse)");
  }
  EXPECT_GT(check.count(), 20u) << "suite corpus unexpectedly small";
}
