// Bytecode-verifier tests: a hand-encoded malformed BCFunction per rule,
// each asserting exact (function, pc, reason) attribution, plus a
// positive sweep proving every function the compiler emits for the full
// Rodinia suite (all three modes) verifies clean.
#include "vm/verifier.h"

#include "driver/compiler.h"
#include "rodinia/rodinia.h"
#include "support/metrics.h"
#include "vm/compile.h"

#include <gtest/gtest.h>

using namespace paralift;
using namespace paralift::vm;

namespace {

/// Wraps one function as a module, registering it as the entry "f".
BCModule singleFn(BCFunction fn) {
  BCModule m;
  fn.name = "f";
  m.byName["f"] = 0;
  m.fns.push_back(std::move(fn));
  return m;
}

Instr ins(BC op, int32_t a = 0, int32_t b = 0, int32_t c = 0, int32_t d = 0,
          int64_t imm = 0) {
  Instr i;
  i.op = op;
  i.a = a;
  i.b = b;
  i.c = c;
  i.d = d;
  i.imm = imm;
  return i;
}

/// The error every negative test asserts on: exactly-attributed pc and a
/// reason containing `needle`.
void expectError(const VerifyResult &r, size_t pc, const std::string &needle,
                 const std::string &function = "f") {
  ASSERT_FALSE(r.ok()) << "expected a verification error";
  const VerifyError &e = r.errors.front();
  EXPECT_EQ(e.function, function) << r.str();
  EXPECT_EQ(e.pc, pc) << r.str();
  EXPECT_NE(e.reason.find(needle), std::string::npos)
      << "reason '" << e.reason << "' does not mention '" << needle << "'";
}

} // namespace

//===----------------------------------------------------------------------===//
// Layer 1: structural rules
//===----------------------------------------------------------------------===//

TEST(VerifierStructural, BadJumpTarget) {
  BCFunction f;
  f.numRegs = 1;
  f.instrs = {ins(BC::Jump, 0, 0, 0, 0, /*imm=*/5)};
  VerifyResult r = verifyModule(singleFn(std::move(f)));
  expectError(r, 0, "jump target 5 outside the function");
  EXPECT_EQ(r.errors.front().op, BC::Jump);
  // The rendered form is the stable one-line attribution format.
  EXPECT_EQ(r.errors.front().str(),
            "fn 'f' (#0) pc 0 (Jump): jump target 5 outside the function "
            "(instruction count 1)");
}

TEST(VerifierStructural, OutOfBoundsRegister) {
  BCFunction f;
  f.numRegs = 2;
  f.instrs = {ins(BC::ConstI, 0, 0, 0, /*d=*/3, 7), ins(BC::Ret)};
  VerifyResult r = verifyModule(singleFn(std::move(f)));
  expectError(r, 0, "register d=3 out of range (numRegs 2)");
}

TEST(VerifierStructural, ExtrasRangeOverflow) {
  BCFunction f;
  f.numRegs = 1;
  f.numResults = 1;
  f.instrs = {ins(BC::Ret, 0, /*b=*/0, /*c=*/1)}; // extras is empty
  VerifyResult r = verifyModule(singleFn(std::move(f)));
  expectError(r, 0, "extras range [0, 1) overflows extras (size 0)");
}

TEST(VerifierStructural, ExtrasRegisterOutOfRange) {
  BCFunction f;
  f.numRegs = 2;
  f.extras = {9}; // range is in bounds; the register inside it is not
  f.instrs = {ins(BC::ConstI, 0, 0, 0, 0, 1),
              ins(BC::Store, /*a=*/0, /*b=*/0, /*c=*/1, /*d=*/1), ins(BC::Ret)};
  VerifyResult r = verifyModule(singleFn(std::move(f)));
  expectError(r, 1, "extras[0]=9 out of range (numRegs 2)");
}

TEST(VerifierStructural, CallArityMismatch) {
  BCModule m;
  BCFunction g;
  g.name = "g";
  g.numRegs = 3;
  g.numArgs = 2;
  g.numResults = 1;
  g.extras = {0};
  g.instrs = {ins(BC::Ret, 0, /*b=*/0, /*c=*/1)};
  BCFunction f;
  f.name = "f";
  f.numRegs = 2;
  f.extras = {0, 1};
  f.instrs = {ins(BC::ConstI, 0, 0, 0, /*d=*/0, 1),
              // passes 1 arg, g takes 2
              ins(BC::Call, 0, /*b=*/0, /*c=*/1, /*d=*/1, /*imm=*/1),
              ins(BC::Ret)};
  m.byName["f"] = 0;
  m.byName["g"] = 1;
  m.fns.push_back(std::move(f));
  m.fns.push_back(std::move(g));
  VerifyResult r = verifyModule(m);
  expectError(r, 1, "call passes 1 args but 'g' takes 2");
}

TEST(VerifierStructural, RetArityMismatch) {
  BCFunction f;
  f.numRegs = 1;
  f.numResults = 2;
  f.extras = {0};
  f.instrs = {ins(BC::ConstI, 0, 0, 0, 0, 1), ins(BC::Ret, 0, 0, /*c=*/1)};
  VerifyResult r = verifyModule(singleFn(std::move(f)));
  expectError(r, 1, "Ret returns 1 values but the function declares 2");
}

TEST(VerifierStructural, BadShapeIndex) {
  BCFunction f;
  f.numRegs = 1;
  f.instrs = {ins(BC::Alloca, 0, 0, 0, 0, /*imm=*/3), ins(BC::Ret)};
  VerifyResult r = verifyModule(singleFn(std::move(f)));
  expectError(r, 0, "shape index 3 out of range");
}

TEST(VerifierStructural, ClosureCaptureOutOfRange) {
  BCModule m;
  BCFunction body;
  body.name = "<closure>";
  body.numRegs = 1;
  body.numArgs = 1;
  body.instrs = {ins(BC::Ret)};
  BCFunction f;
  f.name = "f";
  f.numRegs = 2;
  Closure c;
  c.fnIndex = 1;
  c.captureRegs = {7}; // enclosing frame has 2 registers
  f.closures.push_back(c);
  f.instrs = {ins(BC::ParallelOmp, 0, 0, 0, 0, /*imm=*/0), ins(BC::Ret)};
  m.byName["f"] = 0;
  m.fns.push_back(std::move(f));
  m.fns.push_back(std::move(body));
  VerifyResult r = verifyModule(m);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.errors.front().pc, VerifyError::kNoPc);
  EXPECT_NE(r.errors.front().reason.find("capture register 7 out of range"),
            std::string::npos)
      << r.str();
}

TEST(VerifierStructural, FrameLimitAndArgOverflow) {
  BCFunction f;
  f.numRegs = 2;
  f.numArgs = 5; // argument copy would overflow the frame
  f.instrs = {ins(BC::Ret)};
  VerifyResult r = verifyModule(singleFn(std::move(f)));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors.front().reason.find("numArgs 5 exceeds numRegs 2"),
            std::string::npos)
      << r.str();
}

//===----------------------------------------------------------------------===//
// Layer 2: flow-sensitive typestate rules
//===----------------------------------------------------------------------===//

TEST(VerifierFlow, UninitializedRead) {
  BCFunction f;
  f.numRegs = 2;
  f.instrs = {ins(BC::AddI, /*a=*/0, /*b=*/1, 0, /*d=*/1), ins(BC::Ret)};
  VerifyResult r = verifyModule(singleFn(std::move(f)));
  expectError(r, 0, "reads r0 as int but it is uninitialized");
}

TEST(VerifierFlow, UninitializedOnOnePath) {
  // r1 is only written when the branch is taken; the read after the join
  // must be rejected even though one path defines it.
  BCFunction f;
  f.numRegs = 3;
  f.numArgs = 1; // r0: condition (caller-typed)
  f.instrs = {
      ins(BC::JumpIfFalse, /*a=*/0, 0, 0, 0, /*imm=*/2), // 0: if !r0 goto 2
      ins(BC::ConstI, 0, 0, 0, /*d=*/1, 42),             // 1: r1 = 42
      ins(BC::Copy, /*a=*/1, 0, 0, /*d=*/2),             // 2: r2 = r1
      ins(BC::Ret),                                      // 3
  };
  VerifyResult r = verifyModule(singleFn(std::move(f)));
  expectError(r, 2, "Copy reads uninitialized r1");
}

TEST(VerifierFlow, IntUsedAsMemref) {
  BCFunction f;
  f.numRegs = 2;
  f.instrs = {ins(BC::ConstI, 0, 0, 0, /*d=*/0, 42),
              ins(BC::Load, /*a=*/0, 0, /*c=*/0, /*d=*/1), ins(BC::Ret)};
  VerifyResult r = verifyModule(singleFn(std::move(f)));
  expectError(r, 1, "Load reads r0 as a memref but it is int");
}

TEST(VerifierFlow, FloatOpOnInt) {
  BCFunction f;
  f.numRegs = 2;
  f.instrs = {ins(BC::ConstI, 0, 0, 0, /*d=*/0, 1),
              ins(BC::SqrtF, /*a=*/0, 0, 0, /*d=*/1), ins(BC::Ret)};
  VerifyResult r = verifyModule(singleFn(std::move(f)));
  expectError(r, 1, "reads r0 as float but it is int");
}

TEST(VerifierFlow, LoadRankMismatch) {
  BCFunction f;
  f.numRegs = 3;
  f.shapes.push_back({TypeKind::F32, {4}}); // rank-1 static shape
  f.extras = {1, 1};
  f.instrs = {ins(BC::ConstI, 0, 0, 0, /*d=*/1, 0),
              ins(BC::Alloca, 0, /*b=*/0, /*c=*/0, /*d=*/0, /*imm=*/0),
              // 2 indices into a rank-1 memref
              ins(BC::Load, /*a=*/0, /*b=*/0, /*c=*/2, /*d=*/2), ins(BC::Ret)};
  VerifyResult r = verifyModule(singleFn(std::move(f)));
  expectError(r, 2, "Load indexes 2 dims but the memref in r0 has rank 1");
}

TEST(VerifierFlow, DimRankViolation) {
  BCFunction f;
  f.numRegs = 2;
  f.shapes.push_back({TypeKind::F32, {4, 4}});
  f.instrs = {ins(BC::Alloca, 0, 0, 0, /*d=*/0, 0),
              ins(BC::Dim, /*a=*/0, 0, 0, /*d=*/1, /*imm=*/5), ins(BC::Ret)};
  VerifyResult r = verifyModule(singleFn(std::move(f)));
  expectError(r, 1, "Dim index 5 out of range for rank 2");
}

TEST(VerifierFlow, UnbalancedScopesOnRet) {
  BCFunction f;
  f.numRegs = 1;
  f.instrs = {ins(BC::ScopePush), ins(BC::Ret)};
  VerifyResult r = verifyModule(singleFn(std::move(f)));
  expectError(r, 1, "Ret with 1 unmatched ScopePush");
}

TEST(VerifierFlow, ScopePopUnderflow) {
  BCFunction f;
  f.numRegs = 1;
  f.instrs = {ins(BC::ScopePop), ins(BC::Ret)};
  VerifyResult r = verifyModule(singleFn(std::move(f)));
  expectError(r, 0, "ScopePop without a matching ScopePush");
}

TEST(VerifierFlow, MisplacedSimtBarrier) {
  // A SimtBarrier in a host-callable function aborts serial execution;
  // it is only legal directly inside a gpu-block scf closure body.
  BCFunction f;
  f.numRegs = 1;
  f.instrs = {ins(BC::SimtBarrier), ins(BC::Ret)};
  VerifyResult r = verifyModule(singleFn(std::move(f)));
  expectError(r, 0, "SimtBarrier outside a SIMT");
}

TEST(VerifierFlow, MisplacedTeamBarrier) {
  BCFunction f;
  f.numRegs = 1;
  f.instrs = {ins(BC::TeamBarrier), ins(BC::Ret)};
  VerifyResult r = verifyModule(singleFn(std::move(f)));
  expectError(r, 0, "TeamBarrier outside an omp closure body");
}

TEST(VerifierFlow, SimtBarrierAcceptedInGpuBlockBody) {
  // The legal placement: f launches a gpu-block scf closure whose body
  // (and only whose body) suspends at the barrier.
  BCModule m;
  BCFunction body;
  body.name = "<closure>";
  body.numRegs = 1;
  body.numArgs = 1; // one induction variable
  body.instrs = {ins(BC::SimtBarrier), ins(BC::Ret)};
  BCFunction f;
  f.name = "f";
  f.numRegs = 3;
  Closure c;
  c.fnIndex = 1;
  c.numIvs = 1;
  c.lbs = {0};
  c.ubs = {1};
  c.steps = {2};
  c.gpuBlock = true;
  f.closures.push_back(c);
  f.instrs = {ins(BC::ConstI, 0, 0, 0, /*d=*/0, 0),
              ins(BC::ConstI, 0, 0, 0, /*d=*/1, 4),
              ins(BC::ConstI, 0, 0, 0, /*d=*/2, 1),
              ins(BC::ParallelScf, 0, 0, 0, 0, /*imm=*/0), ins(BC::Ret)};
  m.byName["f"] = 0;
  m.fns.push_back(std::move(f));
  m.fns.push_back(std::move(body));
  VerifyResult r = verifyModule(m);
  EXPECT_TRUE(r.ok()) << r.str();
}

TEST(VerifierFlow, TypeConflictAcrossPathsRejectedOnRead) {
  // r1 is an int on one path and a float on the other; using it as an
  // int operand after the join is Slot-union type confusion.
  BCFunction f;
  f.numRegs = 3;
  f.numArgs = 1;
  f.instrs = {
      ins(BC::JumpIfFalse, /*a=*/0, 0, 0, 0, /*imm=*/3), // 0
      ins(BC::ConstI, 0, 0, 0, /*d=*/1, 1),              // 1: r1 int
      ins(BC::Jump, 0, 0, 0, 0, /*imm=*/4),              // 2
      ins(BC::ConstF, 0, 0, 0, /*d=*/1),                 // 3: r1 float
      ins(BC::AddI, /*a=*/1, /*b=*/1, 0, /*d=*/2),       // 4: read as int
      ins(BC::Ret),                                      // 5
  };
  VerifyResult r = verifyModule(singleFn(std::move(f)));
  expectError(r, 4, "conflicting types");
}

TEST(VerifierFlow, FallOffEndWithResults) {
  BCFunction f;
  f.numRegs = 1;
  f.numResults = 1;
  f.extras = {0};
  f.instrs = {ins(BC::ConstI, 0, 0, 0, 0, 1)}; // no Ret
  VerifyResult r = verifyModule(singleFn(std::move(f)));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.errors.front().pc, VerifyError::kNoPc);
  EXPECT_NE(
      r.errors.front().reason.find("reaches the end of the function without"),
      std::string::npos)
      << r.str();
}

TEST(VerifierFlow, StructuralErrorsSuppressFlowLayer) {
  // The OOB register would also be an uninitialized read; only the
  // structural error may be reported (the flow layer would index with
  // the invalid field).
  BCFunction f;
  f.numRegs = 1;
  f.instrs = {ins(BC::Copy, /*a=*/5, 0, 0, /*d=*/0), ins(BC::Ret)};
  VerifyResult r = verifyModule(singleFn(std::move(f)));
  ASSERT_FALSE(r.ok());
  for (const VerifyError &e : r.errors)
    EXPECT_EQ(e.reason.find("uninitialized"), std::string::npos) << e.str();
}

//===----------------------------------------------------------------------===//
// Interprocedural typestate propagation: type confusion smuggled across
// Call / closure boundaries must be rejected, in any function order.
//===----------------------------------------------------------------------===//

TEST(VerifierInterproc, CallArgTypeConfusionRejected) {
  // f ConstIs an arbitrary integer and Calls g, whose body dereferences
  // that argument as a memref. The callee is analyzed under the
  // typestate the call site actually passes, so the forged pointer is
  // caught where it would be dereferenced.
  BCModule m;
  BCFunction f;
  f.name = "f";
  f.numRegs = 1;
  f.extras = {0};
  f.instrs = {ins(BC::ConstI, 0, 0, 0, /*d=*/0, 0x41414141),
              ins(BC::Call, 0, /*b=*/0, /*c=*/1, /*d=*/0, /*imm=*/1),
              ins(BC::Ret)};
  BCFunction g;
  g.name = "g";
  g.numRegs = 2;
  g.numArgs = 1;
  g.instrs = {ins(BC::Load, /*a=*/0, 0, /*c=*/0, /*d=*/1), ins(BC::Ret)};
  m.byName["f"] = 0;
  m.byName["g"] = 1;
  m.fns.push_back(std::move(f));
  m.fns.push_back(std::move(g));
  VerifyResult r = verifyModule(m);
  expectError(r, 0, "Load reads r0 as a memref but it is int", "g");
}

TEST(VerifierInterproc, CallResultTypeConfusionRejected) {
  // g returns an int; f binds the result and dereferences it as a
  // memref. Results carry the callee's Ret typestates, not blanket
  // trust.
  BCModule m;
  BCFunction g;
  g.name = "g";
  g.numRegs = 1;
  g.numResults = 1;
  g.extras = {0};
  g.instrs = {ins(BC::ConstI, 0, 0, 0, /*d=*/0, 7),
              ins(BC::Ret, 0, /*b=*/0, /*c=*/1)};
  BCFunction f;
  f.name = "f";
  f.numRegs = 2;
  f.extras = {0};
  f.instrs = {ins(BC::Call, 0, /*b=*/0, /*c=*/0, /*d=*/1, /*imm=*/1),
              ins(BC::Load, /*a=*/0, 0, /*c=*/0, /*d=*/1), ins(BC::Ret)};
  m.byName["f"] = 0;
  m.byName["g"] = 1;
  m.fns.push_back(std::move(f));
  m.fns.push_back(std::move(g));
  VerifyResult r = verifyModule(m);
  expectError(r, 1, "Load reads r0 as a memref but it is int", "f");
}

TEST(VerifierInterproc, ClosureBodyBeforeLauncherStillSeeded) {
  // The closure body sits at a LOWER function index than its launcher
  // (the compiler emits bodies after their parent, but adversarial
  // bytecode need not); capture typestates must still reach it.
  BCModule m;
  BCFunction body;
  body.name = "<closure>";
  body.numRegs = 2;
  body.numArgs = 1; // one capture: an int in the enclosing frame
  body.instrs = {ins(BC::Load, /*a=*/0, 0, /*c=*/0, /*d=*/1),
                 ins(BC::Ret)};
  BCFunction f;
  f.name = "f";
  f.numRegs = 1;
  Closure c;
  c.fnIndex = 0;
  c.captureRegs = {0};
  f.closures.push_back(c);
  f.instrs = {ins(BC::ConstI, 0, 0, 0, /*d=*/0, 5),
              ins(BC::ParallelOmp, 0, 0, 0, 0, /*imm=*/0), ins(BC::Ret)};
  m.byName["f"] = 1;
  m.fns.push_back(std::move(body));
  m.fns.push_back(std::move(f));
  VerifyResult r = verifyModule(m);
  expectError(r, 0, "Load reads r0 as a memref but it is int", "<closure>");
}

TEST(VerifierInterproc, UnknownElemLoadResultIsNotAMemref) {
  // A Load with no static element kind yields a scalar: data read from
  // memory can never be treated as a descriptor pointer.
  BCFunction f;
  f.numRegs = 3;
  f.numArgs = 1; // r0: host-provided memref of unknown elem kind
  f.instrs = {ins(BC::Load, /*a=*/0, 0, /*c=*/0, /*d=*/1),
              ins(BC::Load, /*a=*/1, 0, /*c=*/0, /*d=*/2), ins(BC::Ret)};
  VerifyResult r = verifyModule(singleFn(std::move(f)));
  expectError(r, 1, "Load reads r1 as a memref but it is a scalar");
}

TEST(VerifierInterproc, HostArgMergedWithConstIsNotAMemref) {
  // r1 is a host argument on one path and an attacker-chosen integer on
  // the other; the merge must carry the concrete side's constraints,
  // not the trusted side's blanket permissions.
  BCFunction f;
  f.numRegs = 3;
  f.numArgs = 2; // r0: condition, r1: host-provided value
  f.instrs = {
      ins(BC::JumpIfFalse, /*a=*/0, 0, 0, 0, /*imm=*/2), // 0
      ins(BC::ConstI, 0, 0, 0, /*d=*/1, 0xdead),         // 1
      ins(BC::Load, /*a=*/1, 0, /*c=*/0, /*d=*/2),       // 2
      ins(BC::Ret),                                      // 3
  };
  VerifyResult r = verifyModule(singleFn(std::move(f)));
  expectError(r, 2, "Load reads r1 as a memref but it is int");
}

TEST(VerifierInterproc, TeamBarrierInDualContextFunctionRejected) {
  // g holds a TeamBarrier and is reachable both from an omp body (has a
  // team) and from the entry via Call (teamless: the barrier would
  // silently no-op there while the team side synchronizes).
  BCModule m;
  BCFunction f;
  f.name = "f";
  f.numRegs = 1;
  Closure c;
  c.fnIndex = 1;
  f.closures.push_back(c);
  f.instrs = {ins(BC::ParallelOmp, 0, 0, 0, 0, /*imm=*/0),
              ins(BC::Call, 0, /*b=*/0, /*c=*/0, /*d=*/0, /*imm=*/2),
              ins(BC::Ret)};
  BCFunction body;
  body.name = "<closure>";
  body.numRegs = 1;
  body.instrs = {ins(BC::Call, 0, /*b=*/0, /*c=*/0, /*d=*/0, /*imm=*/2),
                 ins(BC::Ret)};
  BCFunction g;
  g.name = "g";
  g.numRegs = 1;
  g.instrs = {ins(BC::TeamBarrier), ins(BC::Ret)};
  m.byName["f"] = 0;
  m.byName["g"] = 2;
  m.fns.push_back(std::move(f));
  m.fns.push_back(std::move(body));
  m.fns.push_back(std::move(g));
  VerifyResult r = verifyModule(m);
  expectError(r, 0, "reachable from both a team (omp) context", "g");
}

TEST(VerifierInterproc, CalledMemrefHelperStillVerifiesClean) {
  // The benign counterpart: a helper receiving a real memref from its
  // call site dereferences it — clean, with the rank statically checked
  // from the propagated typestate.
  BCModule m;
  BCFunction f;
  f.name = "f";
  f.numRegs = 1;
  f.shapes.push_back({TypeKind::F32, {4}});
  f.extras = {0};
  f.instrs = {ins(BC::Alloca, 0, /*b=*/0, /*c=*/0, /*d=*/0, /*imm=*/0),
              ins(BC::Call, 0, /*b=*/0, /*c=*/1, /*d=*/0, /*imm=*/1),
              ins(BC::Ret)};
  BCFunction g;
  g.name = "g";
  g.numRegs = 3;
  g.numArgs = 1;
  g.extras = {1};
  g.instrs = {ins(BC::ConstI, 0, 0, 0, /*d=*/1, 0),
              ins(BC::Load, /*a=*/0, /*b=*/0, /*c=*/1, /*d=*/2),
              ins(BC::Ret)};
  m.byName["f"] = 0;
  m.byName["g"] = 1;
  m.fns.push_back(std::move(f));
  m.fns.push_back(std::move(g));
  VerifyResult r = verifyModule(m);
  EXPECT_TRUE(r.ok()) << r.str();
}

//===----------------------------------------------------------------------===//
// VerifiedModule token + metrics
//===----------------------------------------------------------------------===//

TEST(VerifiedModuleToken, CreateSucceedsOnValidAndFailsOnInvalid) {
  BCFunction ok;
  ok.numRegs = 1;
  ok.instrs = {ins(BC::Ret)};
  BCModule good = singleFn(std::move(ok));
  EXPECT_TRUE(VerifiedModule::create(good).has_value());

  BCFunction bad;
  bad.numRegs = 1;
  bad.instrs = {ins(BC::Jump, 0, 0, 0, 0, 99)};
  BCModule evil = singleFn(std::move(bad));
  VerifyResult why;
  EXPECT_FALSE(VerifiedModule::create(evil, &why).has_value());
  EXPECT_FALSE(why.ok());
}

TEST(VerifierMetrics, CountersTrackFunctionsAndErrors) {
  auto &reg = metrics::MetricsRegistry::instance();
  uint64_t fns0 = reg.counterValue("vm.verify.functions");
  uint64_t errs0 = reg.counterValue("vm.verify.errors");
  BCFunction bad;
  bad.numRegs = 1;
  bad.instrs = {ins(BC::Jump, 0, 0, 0, 0, 99)};
  verifyModule(singleFn(std::move(bad)));
  EXPECT_EQ(reg.counterValue("vm.verify.functions"), fns0 + 1);
  EXPECT_EQ(reg.counterValue("vm.verify.errors"), errs0 + 1);
}

//===----------------------------------------------------------------------===//
// Positive sweep: everything the compiler emits verifies clean
//===----------------------------------------------------------------------===//

namespace {

class RodiniaVerifyTest
    : public ::testing::TestWithParam<const rodinia::Benchmark *> {};

void expectCompilesAndVerifies(const std::string &source,
                               const transforms::PipelineOptions *opts,
                               const std::string &what) {
  DiagnosticEngine diag;
  driver::CompileResult cc = opts ? driver::compile(source, *opts, diag)
                                  : driver::compileForSimt(source, diag);
  ASSERT_TRUE(cc.ok) << what << ": " << diag.str();
  BCModule bc = compileModule(cc.module.get());
  VerifyResult r = verifyModule(bc);
  EXPECT_TRUE(r.ok()) << what << ":\n" << r.str();
}

} // namespace

TEST_P(RodiniaVerifyTest, SimtModeVerifiesClean) {
  const rodinia::Benchmark &b = *GetParam();
  expectCompilesAndVerifies(b.cudaSource, nullptr, b.id + " simt");
}

TEST_P(RodiniaVerifyTest, FullPipelineVerifiesClean) {
  const rodinia::Benchmark &b = *GetParam();
  transforms::PipelineOptions opts;
  expectCompilesAndVerifies(b.cudaSource, &opts, b.id + " full");
}

TEST_P(RodiniaVerifyTest, McudaModeVerifiesClean) {
  const rodinia::Benchmark &b = *GetParam();
  transforms::PipelineOptions opts = transforms::PipelineOptions::mcuda();
  expectCompilesAndVerifies(b.cudaSource, &opts, b.id + " mcuda");
}

TEST_P(RodiniaVerifyTest, OpenmpReferenceVerifiesClean) {
  const rodinia::Benchmark &b = *GetParam();
  if (!b.openmpSource)
    GTEST_SKIP() << "no OpenMP reference";
  transforms::PipelineOptions opts;
  expectCompilesAndVerifies(b.openmpSource, &opts, b.id + " openmp");
}

INSTANTIATE_TEST_SUITE_P(
    Suite, RodiniaVerifyTest,
    [] {
      std::vector<const rodinia::Benchmark *> all;
      for (const auto &b : rodinia::suite())
        all.push_back(&b);
      return ::testing::ValuesIn(all);
    }(),
    [](const ::testing::TestParamInfo<const rodinia::Benchmark *> &info) {
      return info.param->id;
    });
