// Tests for the MocCUDA layer: CUDART emulation, DNN numerics (GEMM /
// convolution backends against each other and small oracles), the
// transpiled PyTorch kernels against native implementations, and the
// mini-ResNet training loop across all four backends.
#include "moccuda/resnet.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>

using namespace paralift;
using namespace paralift::moccuda;

namespace {
runtime::ThreadPool &testPool() {
  static runtime::ThreadPool pool(2);
  return pool;
}
Tensor randomTensor(int n, int c, int h, int w, uint32_t seed) {
  Tensor t(n, c, h, w);
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (auto &v : t.data)
    v = dist(rng);
  return t;
}
} // namespace

//===----------------------------------------------------------------------===//
// CUDART emulation
//===----------------------------------------------------------------------===//

TEST(McudaTest, DevicePropertiesMatchDumpedGpu) {
  McudaDeviceProp prop;
  ASSERT_EQ(mcudaGetDeviceProperties(&prop, 0), McudaError::Success);
  EXPECT_NE(prop.name.find("2080 Ti"), std::string::npos);
  EXPECT_EQ(prop.warpSize, 32);
  EXPECT_EQ(prop.maxThreadsPerBlock, 1024);
  EXPECT_EQ(prop.major, 7);
  EXPECT_EQ(mcudaGetDeviceCount(), 1);
  EXPECT_EQ(mcudaGetDeviceProperties(nullptr, 0), McudaError::InvalidValue);
  EXPECT_EQ(mcudaGetDeviceProperties(&prop, 3), McudaError::InvalidValue);
}

TEST(McudaTest, MallocFreeTracksBytes) {
  size_t before = mcudaAllocatedBytes();
  void *p = nullptr;
  ASSERT_EQ(mcudaMalloc(&p, 1024), McudaError::Success);
  EXPECT_EQ(mcudaAllocatedBytes(), before + 1024);
  std::vector<char> host(1024, 7);
  EXPECT_EQ(mcudaMemcpy(p, host.data(), 1024,
                        McudaMemcpyKind::HostToDevice),
            McudaError::Success);
  std::vector<char> back(1024, 0);
  EXPECT_EQ(mcudaMemcpy(back.data(), p, 1024,
                        McudaMemcpyKind::DeviceToHost),
            McudaError::Success);
  EXPECT_EQ(back[1023], 7);
  EXPECT_EQ(mcudaFree(p), McudaError::Success);
  EXPECT_EQ(mcudaAllocatedBytes(), before);
  EXPECT_EQ(mcudaFree(reinterpret_cast<void *>(0x1234)),
            McudaError::InvalidValue);
}

TEST(McudaTest, StreamsExecuteInFifoOrder) {
  McudaStream *s = nullptr;
  ASSERT_EQ(mcudaStreamCreate(&s), McudaError::Success);
  std::vector<int> order;
  for (int i = 0; i < 16; ++i)
    s->launch([&order, i] { order.push_back(i); });
  ASSERT_EQ(mcudaStreamSynchronize(s), McudaError::Success);
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(order[i], i);
  EXPECT_EQ(mcudaDeviceSynchronize(), McudaError::Success);
  EXPECT_EQ(mcudaStreamDestroy(s), McudaError::Success);
}

//===----------------------------------------------------------------------===//
// GEMM and convolution numerics
//===----------------------------------------------------------------------===//

TEST(DnnTest, SgemmMatchesOracle) {
  int M = 7, N = 5, K = 9;
  std::vector<float> A(M * K), B(K * N), C(M * N), ref(M * N, 0.0f);
  std::mt19937 rng(3);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (auto &v : A) v = dist(rng);
  for (auto &v : B) v = dist(rng);
  for (int i = 0; i < M; ++i)
    for (int k = 0; k < K; ++k)
      for (int j = 0; j < N; ++j)
        ref[i * N + j] += A[i * K + k] * B[k * N + j];
  sgemm(testPool(), M, N, K, A.data(), B.data(), C.data());
  for (int i = 0; i < M * N; ++i)
    EXPECT_NEAR(C[i], ref[i], 1e-4) << i;
}

TEST(DnnTest, SgemmTransposedVariants) {
  int M = 4, N = 6, K = 3;
  std::vector<float> A(M * K), At(K * M), B(K * N), Bt(N * K);
  std::mt19937 rng(4);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (int i = 0; i < M; ++i)
    for (int k = 0; k < K; ++k) {
      A[i * K + k] = dist(rng);
      At[k * M + i] = A[i * K + k];
    }
  for (int k = 0; k < K; ++k)
    for (int j = 0; j < N; ++j) {
      B[k * N + j] = dist(rng);
      Bt[j * K + k] = B[k * N + j];
    }
  std::vector<float> c0(M * N), c1(M * N), c2(M * N);
  sgemm(testPool(), M, N, K, A.data(), B.data(), c0.data());
  sgemmTA(testPool(), M, N, K, At.data(), B.data(), c1.data());
  sgemmTB(testPool(), M, N, K, A.data(), Bt.data(), c2.data());
  for (int i = 0; i < M * N; ++i) {
    EXPECT_NEAR(c0[i], c1[i], 1e-4);
    EXPECT_NEAR(c0[i], c2[i], 1e-4);
  }
}

TEST(DnnTest, ConvBackendsAgree) {
  Tensor x = randomTensor(2, 3, 8, 8, 5);
  Tensor w = randomTensor(4, 3, 3, 3, 6);
  ConvParams p;
  Tensor yNaive, yDirect, yGemm;
  convNaiveForward(testPool(), x, w, yNaive, p);
  convDirectForward(testPool(), x, w, yDirect, p);
  convIm2colForward(testPool(), x, w, yGemm, p);
  ASSERT_EQ(yNaive.size(), yDirect.size());
  ASSERT_EQ(yNaive.size(), yGemm.size());
  for (size_t i = 0; i < yNaive.size(); ++i) {
    EXPECT_NEAR(yNaive.data[i], yDirect.data[i], 1e-4);
    EXPECT_NEAR(yNaive.data[i], yGemm.data[i], 1e-4);
  }
}

TEST(DnnTest, ConvBackwardGradientCheck) {
  // Finite-difference check of dW on a tiny problem.
  Tensor x = randomTensor(1, 2, 4, 4, 7);
  Tensor w = randomTensor(2, 2, 3, 3, 8);
  ConvParams p;
  Tensor y;
  convIm2colForward(testPool(), x, w, y, p);
  Tensor dy(y.n, y.c, y.h, y.w);
  for (auto &v : dy.data)
    v = 1.0f; // dLoss/dy = 1 => loss = sum(y)
  Tensor dx, dw;
  convIm2colBackward(testPool(), x, w, dy, dx, dw, p);

  auto lossOf = [&](const Tensor &wt) {
    Tensor out;
    convIm2colForward(testPool(), x, wt, out, p);
    double s = 0;
    for (float v : out.data)
      s += v;
    return s;
  };
  const float eps = 1e-3f;
  for (size_t i = 0; i < w.data.size(); i += 7) {
    Tensor wp = w, wm = w;
    wp.data[i] += eps;
    wm.data[i] -= eps;
    double grad = (lossOf(wp) - lossOf(wm)) / (2 * eps);
    EXPECT_NEAR(dw.data[i], grad, 5e-2) << i;
  }
  // dX check on a few entries.
  auto lossOfX = [&](const Tensor &xt) {
    Tensor out;
    convIm2colForward(testPool(), xt, w, out, p);
    double s = 0;
    for (float v : out.data)
      s += v;
    return s;
  };
  for (size_t i = 0; i < x.data.size(); i += 11) {
    Tensor xp = x, xm = x;
    xp.data[i] += eps;
    xm.data[i] -= eps;
    double grad = (lossOfX(xp) - lossOfX(xm)) / (2 * eps);
    EXPECT_NEAR(dx.data[i], grad, 5e-2) << i;
  }
}

TEST(DnnTest, BatchNormNormalizes) {
  Tensor x = randomTensor(4, 3, 6, 6, 9);
  BatchNormState bn;
  batchNormForward(testPool(), x, bn);
  // Per-channel mean ~0, variance ~1.
  for (int c = 0; c < x.c; ++c) {
    double sum = 0, sq = 0;
    int count = x.n * x.h * x.w;
    for (int n = 0; n < x.n; ++n)
      for (int i = 0; i < x.h; ++i)
        for (int j = 0; j < x.w; ++j) {
          sum += x.at(n, c, i, j);
          sq += x.at(n, c, i, j) * x.at(n, c, i, j);
        }
    EXPECT_NEAR(sum / count, 0.0, 1e-3);
    EXPECT_NEAR(sq / count, 1.0, 1e-2);
  }
}

TEST(DnnTest, AvgPoolRoundTrip) {
  Tensor x = randomTensor(1, 2, 4, 4, 10);
  Tensor y;
  avgPoolForward(testPool(), x, y);
  EXPECT_EQ(y.h, 2);
  EXPECT_EQ(y.w, 2);
  EXPECT_NEAR(y.at(0, 0, 0, 0),
              0.25f * (x.at(0, 0, 0, 0) + x.at(0, 0, 1, 0) +
                       x.at(0, 0, 0, 1) + x.at(0, 0, 1, 1)),
              1e-5);
  Tensor dx;
  avgPoolBackward(testPool(), y, dx);
  EXPECT_EQ(dx.h, 4);
  EXPECT_NEAR(dx.at(0, 0, 0, 0), 0.25f * y.at(0, 0, 0, 0), 1e-5);
}

//===----------------------------------------------------------------------===//
// Transpiled PyTorch kernels vs native implementations
//===----------------------------------------------------------------------===//

TEST(PolygeistKernelsTest, NllLossMatchesNative) {
  int batch = 6, classes = 10;
  Tensor logits = randomTensor(batch, classes, 1, 1, 11);
  std::vector<int32_t> labels = {0, 3, 9, 2, 7, 5};
  std::vector<int> ints(labels.begin(), labels.end());

  Tensor dNative;
  float lossNative =
      softmaxNllForwardBackward(testPool(), logits, ints, dNative);

  PolygeistKernels kernels(2);
  Tensor dVm(batch, classes, 1, 1);
  float lossVm = kernels.nllLoss(logits.data.data(), labels.data(),
                                 dVm.data.data(), batch, classes);
  EXPECT_NEAR(lossVm, lossNative, 1e-4);
  for (size_t i = 0; i < dNative.size(); ++i)
    EXPECT_NEAR(dVm.data[i], dNative.data[i], 1e-5) << i;
}

TEST(PolygeistKernelsTest, ElementwiseMatchNative) {
  PolygeistKernels kernels(2);
  std::vector<float> a(100), b(100);
  std::iota(a.begin(), a.end(), -50.0f);
  std::iota(b.begin(), b.end(), 0.0f);
  std::vector<float> aRef = a;
  kernels.add(a.data(), b.data(), 100);
  for (int i = 0; i < 100; ++i)
    EXPECT_FLOAT_EQ(a[i], aRef[i] + b[i]);
  kernels.relu(a.data(), 100);
  for (int i = 0; i < 100; ++i)
    EXPECT_GE(a[i], 0.0f);
}

//===----------------------------------------------------------------------===//
// End-to-end training
//===----------------------------------------------------------------------===//

class ResnetBackendTest : public ::testing::TestWithParam<Backend> {};

TEST_P(ResnetBackendTest, LossDecreasesOverSteps) {
  Backend backend = GetParam();
  MiniResNet model(backend, testPool());
  Tensor images = randomTensor(4, 3, 8, 8, 21);
  std::vector<int32_t> labels = {1, 4, 7, 2};
  float first = model.trainStep(images, labels);
  float loss = first;
  for (int step = 0; step < 5; ++step)
    loss = model.trainStep(images, labels);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_LT(loss, first) << backendName(backend)
                         << ": training did not reduce the loss";
}

TEST_P(ResnetBackendTest, ForwardShapes) {
  Backend backend = GetParam();
  MiniResNet model(backend, testPool());
  Tensor images = randomTensor(2, 3, 8, 8, 22);
  Tensor logits = model.forward(images);
  EXPECT_EQ(logits.n, 2);
  EXPECT_EQ(logits.c, 10);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ResnetBackendTest,
                         ::testing::Values(Backend::Native,
                                           Backend::OneDnnLike,
                                           Backend::MocCudaExpert,
                                           Backend::MocCudaPolygeist),
                         [](const ::testing::TestParamInfo<Backend> &info) {
                           std::string name = backendName(info.param);
                           for (char &c : name)
                             if (!isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return name;
                         });

TEST(ResnetConsistencyTest, BackendsComputeSameForward) {
  // All four backends share weights (same seed): forward results must
  // agree to numerical tolerance.
  Tensor images = randomTensor(2, 3, 8, 8, 23);
  runtime::ThreadPool &pool = testPool();
  MiniResNet native(Backend::Native, pool);
  MiniResNet onednn(Backend::OneDnnLike, pool);
  MiniResNet expert(Backend::MocCudaExpert, pool);
  MiniResNet polygeist(Backend::MocCudaPolygeist, pool);
  Tensor l0 = native.forward(images);
  Tensor l1 = onednn.forward(images);
  Tensor l2 = expert.forward(images);
  Tensor l3 = polygeist.forward(images);
  for (size_t i = 0; i < l0.size(); ++i) {
    EXPECT_NEAR(l0.data[i], l1.data[i], 1e-3) << i;
    EXPECT_NEAR(l0.data[i], l2.data[i], 1e-3) << i;
    EXPECT_NEAR(l0.data[i], l3.data[i], 1e-3) << i;
  }
}
