// CompilerSession tests: N-module Rodinia batches under a threaded pool
// and one shared cache are result-identical to serial one-shot compiles
// (in every pipeline mode), job-level failure isolation (one bad module
// doesn't poison the session), double-compileAll idempotence, async
// futures, Simt mode parity with compileForSimt, per-module diagnostic
// attribution, and shared-cache replay across sessions.
#include "driver/compiler.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "rodinia/rodinia.h"
#include "transforms/pass_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <unistd.h>

using namespace paralift;
using transforms::PipelineOptions;

namespace {

driver::SessionOptions
batchOptions(unsigned threads, transforms::PassResultCache *cache,
             driver::ScheduleMode schedule = driver::ScheduleMode::Dag) {
  driver::SessionOptions so;
  so.threads = threads;
  so.cache = cache;
  so.schedule = schedule;
  so.useEnvCache = false; // results must not depend on the environment
  return so;
}

/// Serial one-shot reference compile (no cache, no pool sharing).
std::string serialReference(const std::string &source,
                            const PipelineOptions &opts) {
  DiagnosticEngine diag;
  transforms::PassRunConfig config;
  config.cache = nullptr;
  auto cc = driver::compile(source, opts, diag, config);
  EXPECT_TRUE(cc.ok) << diag.str();
  return ir::printOp(cc.module.op());
}

/// A module whose cpuify hard-errors (barrier outside any parallel
/// nest), flanked by healthy functions in other jobs.
const char *kBadModule = R"(module {
  func {sym_name = "bad", res_types = []} {
    polygeist.barrier
    return
  }
})";

const char *kGoodModule = R"(module {
  func {sym_name = "fine", res_types = []} {
    [%0: memref<?xf32>]:
    %1 = const.int {value = 0} : index
    %2 = const.float {value = 2.0} : f32
    memref.store(%2, %0, %1)
    return
  }
})";

ir::OwnedModule parseOk(const std::string &text) {
  DiagnosticEngine diag;
  auto m = ir::parseModule(text, diag);
  EXPECT_TRUE(m.has_value()) << diag.str();
  return std::move(*m);
}

} // namespace

//===----------------------------------------------------------------------===//
// Batch == serial (the acceptance contract)
//===----------------------------------------------------------------------===//

TEST(SessionBatchTest, RodiniaBatchMatchesSerialAllModes) {
  // The golden contract: DAG and lockstep batch scheduling are both
  // bit-for-bit identical to serial one-shot compiles, in every
  // pipeline mode — so the DAG reordering is unobservable in outputs.
  struct Mode {
    const char *name;
    PipelineOptions opts;
  };
  const Mode modes[] = {{"full", PipelineOptions{}},
                        {"optDisabled", PipelineOptions::optDisabled()},
                        {"mcuda", PipelineOptions::mcuda()}};
  struct Sched {
    const char *name;
    driver::ScheduleMode mode;
  };
  const Sched scheds[] = {{"dag", driver::ScheduleMode::Dag},
                          {"lockstep", driver::ScheduleMode::Lockstep}};
  for (const Mode &mode : modes) {
    std::vector<std::string> expected;
    for (const auto &b : rodinia::suite())
      expected.push_back(serialReference(b.cudaSource, mode.opts));

    for (const Sched &sched : scheds) {
      // The whole suite as one batch: threaded pool, one shared cache.
      transforms::PassResultCache cache;
      driver::CompilerSession session(
          batchOptions(/*threads=*/4, &cache, sched.mode));
      std::vector<driver::CompileJob *> jobs;
      for (const auto &b : rodinia::suite())
        jobs.push_back(&session.addSource(b.id, b.cudaSource, mode.opts));
      EXPECT_TRUE(session.compileAll()) << mode.name << "/" << sched.name;

      size_t i = 0;
      for (const auto &b : rodinia::suite()) {
        ASSERT_TRUE(jobs[i]->ok())
            << mode.name << "/" << sched.name << "/" << b.id << ": "
            << jobs[i]->diagnostics().str();
        EXPECT_EQ(ir::printOp(jobs[i]->result().module.op()), expected[i])
            << mode.name << "/" << sched.name << "/" << b.id;
        ++i;
      }
    }
  }
}

TEST(SessionBatchTest, MixedPipelineGroupsInOneSession) {
  // Jobs with different PipelineOptions batch into separate groups but
  // live in one session; each matches its serial reference.
  const auto &b = rodinia::suite().front();
  std::string fullRef = serialReference(b.cudaSource, PipelineOptions{});
  std::string mcudaRef =
      serialReference(b.cudaSource, PipelineOptions::mcuda());

  driver::CompilerSession session(batchOptions(2, nullptr));
  auto &full = session.addSource("full", b.cudaSource, PipelineOptions{});
  auto &mcuda =
      session.addSource("mcuda", b.cudaSource, PipelineOptions::mcuda());
  auto &full2 = session.addSource("full2", b.cudaSource, PipelineOptions{});
  EXPECT_TRUE(session.compileAll());
  EXPECT_EQ(ir::printOp(full.result().module.op()), fullRef);
  EXPECT_EQ(ir::printOp(full2.result().module.op()), fullRef);
  EXPECT_EQ(ir::printOp(mcuda.result().module.op()), mcudaRef);
}

TEST(SessionBatchTest, SharedCacheReplaysAcrossSessions) {
  transforms::PassResultCache cache;
  std::vector<std::string> first;
  {
    driver::CompilerSession session(batchOptions(4, &cache));
    for (const auto &b : rodinia::suite())
      session.addSource(b.id, b.cudaSource, PipelineOptions{});
    ASSERT_TRUE(session.compileAll());
    for (size_t i = 0; i < session.jobCount(); ++i)
      first.push_back(
          ir::printOp(session.job(i).result().module.op()));
  }
  auto populated = cache.stats();
  EXPECT_GT(populated.stores, 0u);

  // Second session against the same cache: replays, executes nothing
  // new, and reproduces the first session's output bit-for-bit.
  driver::CompilerSession session(batchOptions(4, &cache));
  for (const auto &b : rodinia::suite())
    session.addSource(b.id, b.cudaSource, PipelineOptions{});
  ASSERT_TRUE(session.compileAll());
  auto warmed = cache.stats();
  EXPECT_GT(warmed.passesReplayed, populated.passesReplayed);
  EXPECT_EQ(warmed.passesExecuted, populated.passesExecuted);
  for (size_t i = 0; i < session.jobCount(); ++i)
    EXPECT_EQ(ir::printOp(session.job(i).result().module.op()), first[i]);
}

TEST(SessionBatchTest, ParallelKeyingMatchesSerialKeying) {
  // Keys produced by the fanned-out ir::hashOp leaf tasks must be
  // identical to serial keying: a cache populated by a serial lockstep
  // session must replay a threaded DAG session without a single new miss
  // or executed pass, and vice versa. A keying divergence in either
  // direction would surface as misses.
  for (bool dagFirst : {false, true}) {
    transforms::PassResultCache cache;
    {
      driver::CompilerSession session(batchOptions(
          dagFirst ? 4u : 1u, &cache,
          dagFirst ? driver::ScheduleMode::Dag
                   : driver::ScheduleMode::Lockstep));
      for (const auto &b : rodinia::suite())
        session.addSource(b.id, b.cudaSource, PipelineOptions{});
      ASSERT_TRUE(session.compileAll());
    }
    auto populated = cache.stats();
    driver::CompilerSession session(batchOptions(
        dagFirst ? 1u : 4u, &cache,
        dagFirst ? driver::ScheduleMode::Lockstep
                 : driver::ScheduleMode::Dag));
    for (const auto &b : rodinia::suite())
      session.addSource(b.id, b.cudaSource, PipelineOptions{});
    ASSERT_TRUE(session.compileAll());
    auto warmed = cache.stats();
    EXPECT_EQ(warmed.misses, populated.misses) << "dagFirst=" << dagFirst;
    EXPECT_EQ(warmed.passesExecuted, populated.passesExecuted)
        << "dagFirst=" << dagFirst;
    EXPECT_GT(warmed.passesReplayed, populated.passesReplayed);
  }
}

//===----------------------------------------------------------------------===//
// Failure isolation
//===----------------------------------------------------------------------===//

TEST(SessionIsolationTest, OneBadModuleDoesNotPoisonTheBatch) {
  std::string goodRef;
  {
    driver::CompilerSession ref(batchOptions(1, nullptr));
    auto &job = ref.addModule("ref", parseOk(kGoodModule));
    ASSERT_TRUE(ref.compileAll());
    goodRef = ir::printOp(job.result().module.op());
  }

  driver::CompilerSession session(batchOptions(4, nullptr));
  auto &good1 = session.addModule("good1.ir", parseOk(kGoodModule));
  auto &bad = session.addModule("bad.ir", parseOk(kBadModule));
  auto &good2 = session.addModule("good2.ir", parseOk(kGoodModule));
  EXPECT_FALSE(session.compileAll());

  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.diagnostics().str().find(
                "barrier outside thread-parallel loop"),
            std::string::npos)
      << bad.diagnostics().str();
  EXPECT_TRUE(good1.ok()) << good1.diagnostics().str();
  EXPECT_TRUE(good2.ok()) << good2.diagnostics().str();
  EXPECT_EQ(ir::printOp(good1.result().module.op()), goodRef);
  EXPECT_EQ(ir::printOp(good2.result().module.op()), goodRef);
}

TEST(SessionIsolationTest, FrontendFailureIsolatesToo) {
  const auto &b = rodinia::suite().front();
  driver::CompilerSession session(batchOptions(2, nullptr));
  auto &bad = session.addSource("broken.cu", "void f() { x = 1; }");
  auto &good = session.addSource("ok.cu", b.cudaSource);
  EXPECT_FALSE(session.compileAll());
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.diagnostics().hasErrors());
  EXPECT_TRUE(good.ok()) << good.diagnostics().str();
}

//===----------------------------------------------------------------------===//
// compileAll semantics
//===----------------------------------------------------------------------===//

TEST(SessionTest, DoubleCompileAllIsIdempotent) {
  const auto &b = rodinia::suite().front();
  driver::CompilerSession session(batchOptions(2, nullptr));
  auto &j1 = session.addSource("a", b.cudaSource);
  auto &j2 = session.addSource("b", b.cudaSource);
  ASSERT_TRUE(session.compileAll());
  std::string out1 = ir::printOp(j1.result().module.op());
  std::string out2 = ir::printOp(j2.result().module.op());
  ir::Op *raw1 = j1.result().module.op();

  // Second compileAll: nothing recompiles, results (and the module
  // objects themselves) are untouched.
  EXPECT_TRUE(session.compileAll());
  EXPECT_EQ(j1.result().module.op(), raw1);
  EXPECT_EQ(ir::printOp(j1.result().module.op()), out1);
  EXPECT_EQ(ir::printOp(j2.result().module.op()), out2);
}

TEST(SessionTest, JobsAddedAfterCompileAllJoinTheNextBatch) {
  const auto &b = rodinia::suite().front();
  driver::CompilerSession session(batchOptions(1, nullptr));
  auto &j1 = session.addSource("first", b.cudaSource);
  ASSERT_TRUE(session.compileAll());
  EXPECT_TRUE(j1.ok());

  auto &j2 = session.addSource("second", b.cudaSource);
  EXPECT_FALSE(session.ok()); // second not compiled yet
  ASSERT_TRUE(session.compileAll());
  EXPECT_TRUE(j2.ok());
  EXPECT_EQ(ir::printOp(j1.result().module.op()),
            ir::printOp(j2.result().module.op()));
}

TEST(SessionTest, AsyncCompileAllAndFutures) {
  transforms::PassResultCache cache;
  driver::CompilerSession session(batchOptions(2, &cache));
  std::vector<driver::CompileJob *> jobs;
  for (const auto &b : rodinia::suite())
    jobs.push_back(&session.addSource(b.id, b.cudaSource));
  session.compileAllAsync();
  // Futures: block per job, in any order.
  for (auto it = jobs.rbegin(); it != jobs.rend(); ++it) {
    (*it)->wait();
    EXPECT_TRUE((*it)->ok()) << (*it)->diagnostics().str();
  }
  EXPECT_TRUE(session.wait());
  EXPECT_TRUE(session.ok());
}

TEST(SessionTest, FuturesResolveIncrementallyUnderDag) {
  // Completion-order probe: under the DAG scheduler a job is marked done
  // the moment its own chain completes. With threads=1 the serial drain
  // runs depth-first, so the first job observably resolves while other
  // modules still have passes left to execute — the cache's
  // passes-executed counter at that instant must be short of its final
  // value. (Under lockstep every pass has executed before any job
  // resolves, so this probe is exactly the incremental-futures contract.)
  transforms::PassResultCache cache;
  driver::SessionOptions so = batchOptions(1, &cache);
  std::atomic<uint64_t> executedAtFirstCompletion{0};
  std::atomic<int> completions{0};
  so.onJobCompleted = [&](driver::CompileJob &) {
    if (completions.fetch_add(1) == 0)
      executedAtFirstCompletion = cache.stats().passesExecuted;
  };
  driver::CompilerSession session(std::move(so));
  for (const auto &b : rodinia::suite())
    session.addSource(b.id, b.cudaSource);
  ASSERT_TRUE(session.compileAll());
  EXPECT_EQ(completions.load(), static_cast<int>(session.jobCount()));
  EXPECT_GT(executedAtFirstCompletion.load(), 0u);
  EXPECT_LT(executedAtFirstCompletion.load(),
            cache.stats().passesExecuted);
  // Latency stamps are populated and bounded by the batch.
  for (size_t i = 0; i < session.jobCount(); ++i)
    EXPECT_GE(session.job(i).latencySeconds(), 0.0);
}

//===----------------------------------------------------------------------===//
// Modes and attribution
//===----------------------------------------------------------------------===//

TEST(SessionTest, SimtModeMatchesCompileForSimt) {
  driver::SessionOptions so = batchOptions(2, nullptr);
  so.mode = driver::SessionMode::Simt;
  driver::CompilerSession session(std::move(so));
  std::vector<driver::CompileJob *> jobs;
  for (const auto &b : rodinia::suite())
    jobs.push_back(&session.addSource(b.id, b.cudaSource));
  ASSERT_TRUE(session.compileAll());
  size_t i = 0;
  for (const auto &b : rodinia::suite()) {
    DiagnosticEngine diag;
    auto ref = driver::compileForSimt(b.cudaSource, diag);
    ASSERT_TRUE(ref.ok) << b.id << ": " << diag.str();
    EXPECT_EQ(ir::printOp(jobs[i]->result().module.op()),
              ir::printOp(ref.module.op()))
        << b.id;
    ++i;
  }
}

TEST(SessionTest, DiagnosticsCarryModuleName) {
  driver::CompilerSession session(batchOptions(2, nullptr));
  auto &bad1 = session.addSource("alpha.cu", "void f() { x = 1; }");
  auto &bad2 = session.addSource("beta.cu", "int f() { return y + 1; }");
  EXPECT_FALSE(session.compileAll());
  EXPECT_NE(bad1.diagnostics().str().find("alpha.cu:"), std::string::npos)
      << bad1.diagnostics().str();
  EXPECT_NE(bad2.diagnostics().str().find("beta.cu:"), std::string::npos)
      << bad2.diagnostics().str();
  // Attribution must not bleed across jobs.
  EXPECT_EQ(bad1.diagnostics().str().find("beta.cu:"), std::string::npos);
}

TEST(SessionTest, LegacyWrapperStillUnprefixed) {
  // The one-shot wrappers keep their pre-session diagnostic format (no
  // module prefix) so existing embedders' error matching is unaffected.
  DiagnosticEngine diag;
  auto cc = driver::compile("void f() { x = 1; }", PipelineOptions{}, diag);
  EXPECT_FALSE(cc.ok);
  ASSERT_TRUE(diag.hasErrors());
  for (const auto &d : diag.diagnostics())
    EXPECT_TRUE(d.module.empty()) << d.str();
}

TEST(SessionTest, CompileAllSweepsTheDiskLimit) {
  // A long-lived session must stay within --cache-limit after every
  // batch, not only at shutdown: compileAll itself sweeps.
  auto dir = std::filesystem::temp_directory_path() /
             ("paralift-session-evict-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  const uint64_t limit = 2048;
  uint64_t total = 0;
  {
    driver::SessionOptions so;
    so.threads = 1;
    so.useEnvCache = false;
    so.cacheDir = dir.string();
    driver::CompilerSession session(so);
    ASSERT_NE(session.cache(), nullptr);
    session.cache()->setDiskLimitBytes(limit);
    for (const auto &b : rodinia::suite())
      session.addSource(b.id, b.cudaSource);
    ASSERT_TRUE(session.compileAll());
    EXPECT_GT(session.cache()->stats().stores, 0u);
    // Session still alive — the bound must hold here already.
    for (const auto &e : std::filesystem::directory_iterator(dir))
      total += std::filesystem::file_size(e.path());
    EXPECT_LE(total, limit);
  }
  std::filesystem::remove_all(dir);
}

TEST(SessionTest, SessionTimingAggregatesAcrossBatch) {
  driver::SessionOptions so = batchOptions(2, nullptr);
  so.collectTiming = true;
  driver::CompilerSession session(std::move(so));
  for (const auto &b : rodinia::suite())
    session.addSource(b.id, b.cudaSource);
  ASSERT_TRUE(session.compileAll());
  const auto &report = session.timingReport();
  ASSERT_FALSE(report.records.empty());
  // Batch mode: one record per pass of the (single) group's pipeline.
  for (const auto &r : report.records)
    EXPECT_GE(r.seconds, 0.0);
}
