// Arena lifecycle tests: the IRArena allocator itself (slab growth,
// alignment, destructor records, attr-name interning), the arena-root
// ownership model (clone-then-destroy-source independence, erase-is-
// unlink reuse inside one module), and cache replay splicing into a live
// arena while a threaded pass manager runs (the TSan CI job exercises
// this file under -DPARALIFT_SANITIZE=thread).
#include "ir/arena.h"
#include "ir/builder.h"
#include "ir/hasher.h"
#include "ir/ophelpers.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "transforms/pass_cache.h"
#include "transforms/registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

using namespace paralift;
using namespace paralift::ir;
using namespace paralift::transforms;

namespace {

OwnedModule parseOk(const std::string &text) {
  DiagnosticEngine diag;
  auto m = ir::parseModule(text, diag);
  EXPECT_TRUE(m.has_value()) << diag.str();
  return std::move(*m);
}

const char *kLoopModule = R"(module {
  func {sym_name = "axpy", res_types = []} {
    [%0: memref<?xf32>, %1: memref<?xf32>]:
    %2 = const.int {value = 0} : index
    %3 = const.int {value = 64} : index
    %4 = const.int {value = 1} : index
    scf.for(%2, %3, %4) {
      [%5: index]:
      %6 = memref.load(%0, %5) : f32
      %7 = memref.load(%1, %5) : f32
      %8 = addf(%6, %7) : f32
      memref.store(%8, %1, %5)
      yield
    }
    return
  }
})";

} // namespace

//===----------------------------------------------------------------------===//
// IRArena allocator
//===----------------------------------------------------------------------===//

TEST(ArenaAllocTest, AlignmentAndGrowth) {
  IRArena arena;
  std::vector<char *> ptrs;
  for (int i = 0; i < 4000; ++i) {
    auto *p = static_cast<char *>(arena.allocate(24));
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 16, 0u);
    ptrs.push_back(p);
  }
  // Bump allocation never hands out overlapping storage: all pointers are
  // at least the rounded size apart within a slab.
  for (size_t i = 1; i < ptrs.size(); ++i)
    if (ptrs[i] > ptrs[i - 1])
      EXPECT_GE(ptrs[i] - ptrs[i - 1], 32);
  IRArena::Stats st = arena.stats();
  EXPECT_GT(st.slabs, 1u); // 4000 * 32 bytes forces slab chaining
  EXPECT_GE(st.bytesReserved, st.bytesAllocated);
}

TEST(ArenaAllocTest, DestructorRecordsRunOnTeardown) {
  int runs = 0;
  {
    IRArena arena;
    auto **slot = static_cast<int **>(arena.allocate(sizeof(int *)));
    *slot = &runs;
    arena.registerDestructor(slot, [](void *p) { ++**static_cast<int **>(p); });
    arena.registerDestructor(slot, [](void *p) { ++**static_cast<int **>(p); });
    EXPECT_EQ(arena.stats().destructorRecords, 2u);
    EXPECT_EQ(runs, 0);
  }
  EXPECT_EQ(runs, 2);
}

TEST(ArenaAllocTest, ConcurrentAllocationIsSafe) {
  IRArena arena;
  constexpr int kThreads = 8, kAllocs = 2000;
  std::vector<std::thread> workers;
  std::vector<std::vector<char *>> out(kThreads);
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&, t] {
      for (int i = 0; i < kAllocs; ++i) {
        auto *p = static_cast<char *>(arena.allocate(16));
        *p = static_cast<char>(t); // touch the byte; TSan checks races
        out[t].push_back(p);
      }
    });
  for (auto &w : workers)
    w.join();
  // Every pointer is distinct (no two threads got the same storage).
  std::vector<char *> all;
  for (auto &v : out)
    all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads) * kAllocs);
}

TEST(ArenaAllocTest, AttrNameInterningIsPointerStable) {
  const char *a = internAttrName("sym_name", 8);
  const char *b = internAttrName(std::string("sym_name"));
  EXPECT_EQ(a, b); // equal contents -> identical pointer
  std::string dynamic = "custom.attr.name";
  const char *c = internAttrName(dynamic);
  const char *d = internAttrName("custom.attr.name", dynamic.size());
  EXPECT_EQ(c, d);
  EXPECT_STREQ(c, "custom.attr.name");
  EXPECT_NE(a, c);
}

//===----------------------------------------------------------------------===//
// Arena-root ownership
//===----------------------------------------------------------------------===//

TEST(ArenaLifecycleTest, CloneSurvivesSourceDestruction) {
  OwnedModule src = parseOk(kLoopModule);
  Hash128 srcHash = hashOp(src.op());
  OwnedModule clone = cloneModule(src.get());
  EXPECT_NE(&src.arena(), &clone.arena()); // independent arenas
  std::string printed = printOp(clone.op());
  // Destroy the source module; the clone must be fully self-contained.
  src = OwnedModule();
  EXPECT_TRUE(verifyOk(clone.op()));
  EXPECT_EQ(hashOp(clone.op()), srcHash);
  EXPECT_EQ(printOp(clone.op()), printed);
}

TEST(ArenaLifecycleTest, EraseIsUnlinkAndArenaIsReused) {
  OwnedModule m = parseOk(kLoopModule);
  Op *func = m.get().lookupFunc("axpy");
  ASSERT_NE(func, nullptr);
  Hash128 before = hashOp(m.op());
  size_t allocatedBefore = m.arena().stats().bytesAllocated;

  // Erase the whole function, then rebuild an equivalent module state by
  // re-parsing into the same arena — the erased memory stays behind
  // (monotonic arena) but the module works like new.
  func->erase();
  EXPECT_EQ(m.get().lookupFunc("axpy"), nullptr);
  EXPECT_GE(m.arena().stats().bytesAllocated, allocatedBefore);

  DiagnosticEngine diag;
  Op *top = parseModuleInto(m.arena(), kLoopModule, diag);
  ASSERT_NE(top, nullptr) << diag.str();
  Block &src = top->region(0).front();
  for (Op *op = src.front(), *next = nullptr; op; op = next) {
    next = op->next();
    src.unlink(op);
    m.get().body().push_back(op);
  }
  Op::destroy(top); // detaches only; memory stays in m's arena

  EXPECT_TRUE(verifyOk(m.op()));
  EXPECT_EQ(hashOp(m.op()), before);
}

TEST(ArenaLifecycleTest, EraseAndRebuildInsideOneFunction) {
  OwnedModule m;
  FuncOp f = FuncOp::create(m.get(), "build", {}, {});
  Builder b(&f.body());
  // Build, erase, and rebuild repeatedly: use-def bookkeeping must stay
  // consistent while the arena only ever grows.
  for (int round = 0; round < 50; ++round) {
    Value x = b.constI32(round);
    Value y = b.constI32(round + 1);
    Value s = b.addi(x, y);
    Op *sum = s.definingOp();
    EXPECT_EQ(x.numUses(), 1u);
    sum->erase();
    EXPECT_EQ(x.numUses(), 0u);
    x.definingOp()->erase();
    y.definingOp()->erase();
    EXPECT_TRUE(f.body().empty());
  }
  b.ret({});
  EXPECT_TRUE(verifyOk(m.op()));
}

TEST(ArenaLifecycleTest, ModuleTeardownIsSlabRelease) {
  // Teardown cost is O(slabs), not O(ops): a module with thousands of
  // ops still only chains a handful of doubling slabs.
  OwnedModule m;
  FuncOp f = FuncOp::create(m.get(), "big", {}, {});
  Builder b(&f.body());
  Value acc = b.constI32(0);
  for (int i = 0; i < 20000; ++i)
    acc = b.addi(acc, b.constI32(i));
  b.ret({});
  IRArena::Stats st = m.arena().stats();
  EXPECT_GT(st.bytesAllocated, size_t{20000} * sizeof(Op));
  EXPECT_LT(st.slabs, 64u);
  // String attrs are the only destructor records; this module has exactly
  // one func (sym_name + res_types share one AttrMap record).
  EXPECT_LE(st.destructorRecords, 2u);
  m = OwnedModule(); // must not leak (ASan CI) nor walk per-op
}

//===----------------------------------------------------------------------===//
// Cache replay into a live arena under a threaded pass manager
//===----------------------------------------------------------------------===//

TEST(ArenaReplayTest, SplicedReplayLandsInDestinationArena) {
  const std::string pipeline = "canonicalize,cse";
  PassResultCache cache;
  DiagnosticEngine diag;

  OwnedModule warm = parseOk(kLoopModule);
  {
    PassManager pm;
    ASSERT_TRUE(buildPipelineFromSpec(pm, pipeline, diag)) << diag.str();
    pm.setResultCache(&cache);
    ASSERT_TRUE(pm.run(warm.get(), diag)) << diag.str();
  }
  std::string expected = printOp(warm.op());

  // Second run replays from cache: every spliced func must live in the
  // destination module's arena, so destroying the module afterwards is
  // safe and complete (ASan verifies no leak/UAF).
  OwnedModule replay = parseOk(kLoopModule);
  {
    PassManager pm;
    ASSERT_TRUE(buildPipelineFromSpec(pm, pipeline, diag)) << diag.str();
    pm.setResultCache(&cache);
    ASSERT_TRUE(pm.run(replay.get(), diag)) << diag.str();
  }
  EXPECT_GT(cache.stats().passesReplayed, 0u);
  EXPECT_EQ(printOp(replay.op()), expected);
  Op *func = replay.get().lookupFunc("axpy");
  ASSERT_NE(func, nullptr);
  EXPECT_EQ(&func->arena(), &replay.arena());
}

TEST(ArenaReplayTest, ThreadedReplayIntoLiveArena) {
  // Multi-function module so --pm-threads actually fans functions of one
  // module (one arena) across pool threads, both executing and replaying.
  std::string text = "module {\n";
  for (int i = 0; i < 6; ++i) {
    std::string n = std::to_string(i);
    // Value ids are module-global in the textual format; give each func
    // a disjoint range.
    auto v = [&](int k) { return "%" + std::to_string(i * 8 + k); };
    text += "  func {sym_name = \"k" + n + "\", res_types = []} {\n"
            "    [" + v(0) + ": memref<?xf32>]:\n"
            "    " + v(1) + " = const.int {value = 0} : index\n"
            "    " + v(2) + " = const.int {value = 32} : index\n"
            "    " + v(3) + " = const.int {value = 1} : index\n"
            "    scf.for(" + v(1) + ", " + v(2) + ", " + v(3) + ") {\n"
            "      [" + v(4) + ": index]:\n"
            "      " + v(5) + " = const.float {value = " + n + ".0} : f32\n"
            "      memref.store(" + v(5) + ", " + v(0) + ", " + v(4) + ")\n"
            "      yield\n"
            "    }\n"
            "    return\n"
            "  }\n";
  }
  text += "}\n";

  const std::string pipeline = "canonicalize,cse,licm,canonicalize";
  PassResultCache cache;
  DiagnosticEngine diag;

  OwnedModule first = parseOk(text);
  {
    PassManager pm;
    ASSERT_TRUE(buildPipelineFromSpec(pm, pipeline, diag)) << diag.str();
    pm.setResultCache(&cache);
    pm.setThreadCount(4);
    ASSERT_TRUE(pm.run(first.get(), diag)) << diag.str();
  }
  std::string expected = printOp(first.op());

  for (int run = 0; run < 3; ++run) {
    OwnedModule m = parseOk(text);
    PassManager pm;
    ASSERT_TRUE(buildPipelineFromSpec(pm, pipeline, diag)) << diag.str();
    pm.setResultCache(&cache);
    pm.setThreadCount(4);
    ASSERT_TRUE(pm.run(m.get(), diag)) << diag.str();
    EXPECT_EQ(printOp(m.op()), expected);
    EXPECT_TRUE(verifyOk(m.op()));
    // Module (and its arena, including all replayed IR) destroyed here
    // while the cache stays live — the next round must not observe it.
  }
}
