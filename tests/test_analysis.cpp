// Unit tests for the analysis layer: memory effects and base-object
// aliasing (analysis/memory.h), linear decomposition / thread-privacy /
// uniformity (analysis/affine.h), and barrier effect sets with the
// thread-private hole (analysis/barrier.h) — the semantic core of §III-A.
#include "analysis/affine.h"
#include "analysis/barrier.h"
#include "analysis/memory.h"

#include "ir/builder.h"
#include "ir/ophelpers.h"
#include "ir/printer.h"

#include <gtest/gtest.h>

using namespace paralift;
using namespace paralift::ir;
using namespace paralift::analysis;

namespace {

/// A module with one function `test(memref<?xf32> a, memref<?xf32> b)`
/// and a builder positioned in its body.
struct TestFunc {
  OwnedModule module;
  FuncOp func;
  Builder b;

  TestFunc()
      : func(FuncOp::create(module.get(), "test",
                            {Type::memref(TypeKind::F32, {Type::kDynamic}),
                             Type::memref(TypeKind::F32, {Type::kDynamic})},
                            {})),
        b(&func.body()) {}

  Value argA() const { return func.arg(0); }
  Value argB() const { return func.arg(1); }

  /// Opens a 1-D thread-parallel (gpu.block) region [0, 16) and positions
  /// the builder inside. Returns the parallel op.
  ParallelOp openThreadParallel(unsigned dims = 1) {
    std::vector<Value> lbs, ubs, steps;
    for (unsigned i = 0; i < dims; ++i) {
      lbs.push_back(b.constIndex(0));
      ubs.push_back(b.constIndex(16));
      steps.push_back(b.constIndex(1));
    }
    ParallelOp par = ParallelOp::create(b, OpKind::ScfParallel, lbs, ubs,
                                        steps);
    par.op->attrs().set("gpu.block", true);
    b.setInsertionPointToEnd(&par.body());
    return par;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Memory effects
//===----------------------------------------------------------------------===//

TEST(MemoryEffectTest, LoadReadsBase) {
  TestFunc f;
  Value i = f.b.constIndex(0);
  Value v = f.b.load(f.argA(), {i});
  std::vector<MemoryEffect> effects;
  getOpEffects(v.definingOp(), effects);
  ASSERT_EQ(effects.size(), 1u);
  EXPECT_EQ(effects[0].kind, EffectKind::Read);
  EXPECT_EQ(effects[0].base, f.argA());
}

TEST(MemoryEffectTest, StoreWritesBase) {
  TestFunc f;
  Value i = f.b.constIndex(0);
  Value v = f.b.constF32(1.0);
  f.b.store(v, f.argA(), {i});
  std::vector<MemoryEffect> effects;
  getOpEffects(f.func.body().back(), effects);
  ASSERT_EQ(effects.size(), 1u);
  EXPECT_EQ(effects[0].kind, EffectKind::Write);
  EXPECT_EQ(effects[0].base, f.argA());
}

TEST(MemoryEffectTest, PureOpsAreEffectFree) {
  TestFunc f;
  Value a = f.b.constF32(1.0);
  Value s = f.b.addf(a, a);
  EXPECT_TRUE(isEffectFree(a.definingOp()));
  EXPECT_TRUE(isEffectFree(s.definingOp()));
  EXPECT_TRUE(isReadOnly(s.definingOp()));
  EXPECT_FALSE(mayWrite(s.definingOp()));
}

TEST(MemoryEffectTest, CallHasUnknownEffects) {
  TestFunc f;
  CallOp call = CallOp::create(f.b, "extern_fn", {}, {});
  EXPECT_TRUE(mayWrite(call.op));
  EXPECT_FALSE(isReadOnly(call.op));
  std::vector<MemoryEffect> effects;
  getOpEffects(call.op, effects);
  bool hasUnknownWrite = false;
  for (auto &e : effects)
    if (e.kind == EffectKind::Write && !e.base)
      hasUnknownWrite = true;
  EXPECT_TRUE(hasUnknownWrite);
}

TEST(MemoryEffectTest, RecursiveEffectsSeeNestedStores) {
  TestFunc f;
  Value lb = f.b.constIndex(0), ub = f.b.constIndex(4),
        step = f.b.constIndex(1);
  ForOp loop = ForOp::create(f.b, lb, ub, step);
  Builder inner(&loop.body());
  Value c = inner.constF32(0.0);
  inner.store(c, f.argA(), {loop.iv()});
  inner.yield();
  EXPECT_TRUE(mayWrite(loop.op));
  std::vector<MemoryEffect> effects;
  getEffectsRecursive(loop.op, effects);
  bool writesA = false;
  for (auto &e : effects)
    if (e.kind == EffectKind::Write && e.base == f.argA())
      writesA = true;
  EXPECT_TRUE(writesA);
}

TEST(MemoryEffectTest, AllocaIsAllocEffect) {
  TestFunc f;
  Value m = f.b.allocaMem(Type::memref(TypeKind::F32, {8}));
  std::vector<MemoryEffect> effects;
  getOpEffects(m.definingOp(), effects);
  ASSERT_EQ(effects.size(), 1u);
  EXPECT_EQ(effects[0].kind, EffectKind::Alloc);
}

//===----------------------------------------------------------------------===//
// Base objects and aliasing
//===----------------------------------------------------------------------===//

TEST(AliasTest, SubViewChainsStripToBase) {
  TestFunc f;
  Value m = f.b.allocaMem(Type::memref(TypeKind::F32, {4, 4}));
  Value i = f.b.constIndex(1);
  Value row = f.b.subview(m, {i});
  EXPECT_EQ(getBase(row), m);
  EXPECT_EQ(getBase(m), m);
}

TEST(AliasTest, DistinctAllocationsDoNotAlias) {
  TestFunc f;
  Value m1 = f.b.allocaMem(Type::memref(TypeKind::F32, {8}));
  Value m2 = f.b.allocaMem(Type::memref(TypeKind::F32, {8}));
  EXPECT_FALSE(mayAlias(m1, m2));
  EXPECT_TRUE(mayAlias(m1, m1));
}

TEST(AliasTest, AllocationNeverAliasesArgument) {
  TestFunc f;
  Value m = f.b.allocaMem(Type::memref(TypeKind::F32, {8}));
  EXPECT_FALSE(mayAlias(m, f.argA()));
}

TEST(AliasTest, DistinctArgumentsAreNoAlias) {
  // Kernel pointer args are treated as restrict (see memory.h docs).
  TestFunc f;
  EXPECT_FALSE(mayAlias(f.argA(), f.argB()));
  EXPECT_TRUE(mayAlias(f.argA(), f.argA()));
}

TEST(AliasTest, SubViewsOfSameBaseMayAlias) {
  TestFunc f;
  Value m = f.b.allocaMem(Type::memref(TypeKind::F32, {4, 4}));
  Value i = f.b.constIndex(0), j = f.b.constIndex(1);
  Value r0 = f.b.subview(m, {i});
  Value r1 = f.b.subview(m, {j});
  EXPECT_TRUE(mayAlias(r0, r1));
}

TEST(AliasTest, NonEscapingAlloc) {
  TestFunc f;
  Value m = f.b.allocaMem(Type::memref(TypeKind::F32, {8}));
  Value i = f.b.constIndex(0);
  Value v = f.b.load(m, {i});
  f.b.store(v, m, {i});
  EXPECT_TRUE(isNonEscapingAlloc(m));

  Value esc = f.b.allocaMem(Type::memref(TypeKind::F32, {8}));
  CallOp::create(f.b, "sink", {esc}, {});
  EXPECT_FALSE(isNonEscapingAlloc(esc));
}

//===----------------------------------------------------------------------===//
// Linear decomposition
//===----------------------------------------------------------------------===//

TEST(LinearTest, ConstantOnly) {
  TestFunc f;
  ParallelOp par = f.openThreadParallel();
  Builder &b = f.b;
  Value c = b.constIndex(7);
  LinearExpr e = decomposeLinear(c, {par.iv(0)});
  EXPECT_FALSE(e.unknown);
  EXPECT_EQ(e.constant, 7);
  EXPECT_TRUE(e.coeffs.empty());
  EXPECT_FALSE(e.dependsOnIvs());
}

TEST(LinearTest, BareIv) {
  TestFunc f;
  ParallelOp par = f.openThreadParallel();
  LinearExpr e = decomposeLinear(par.iv(0), {par.iv(0)});
  EXPECT_FALSE(e.unknown);
  ASSERT_EQ(e.coeffs.size(), 1u);
  EXPECT_EQ(e.coeffs.at(0), 1);
  EXPECT_TRUE(e.dependsOnIvs());
}

TEST(LinearTest, ScaledIvPlusConstant) {
  TestFunc f;
  ParallelOp par = f.openThreadParallel();
  Builder &b = f.b;
  Value scaled = b.muli(par.iv(0), b.constIndex(3));
  Value idx = b.addi(scaled, b.constIndex(5));
  LinearExpr e = decomposeLinear(idx, {par.iv(0)});
  EXPECT_FALSE(e.unknown);
  EXPECT_EQ(e.constant, 5);
  EXPECT_EQ(e.coeffs.at(0), 3);
}

TEST(LinearTest, TwoIvs) {
  TestFunc f;
  ParallelOp par = f.openThreadParallel(2);
  Builder &b = f.b;
  Value idx = b.addi(par.iv(0), b.muli(par.iv(1), b.constIndex(16)));
  LinearExpr e = decomposeLinear(idx, {par.iv(0), par.iv(1)});
  EXPECT_FALSE(e.unknown);
  EXPECT_EQ(e.coeffs.at(0), 1);
  EXPECT_EQ(e.coeffs.at(1), 16);
}

TEST(LinearTest, IvTimesIvIsUnknown) {
  TestFunc f;
  ParallelOp par = f.openThreadParallel();
  Value sq = f.b.muli(par.iv(0), par.iv(0));
  LinearExpr e = decomposeLinear(sq, {par.iv(0)});
  EXPECT_TRUE(e.unknown);
}

TEST(LinearTest, SubtractionNegatesCoefficient) {
  TestFunc f;
  ParallelOp par = f.openThreadParallel();
  Builder &b = f.b;
  Value idx = b.subi(b.constIndex(15), par.iv(0));
  LinearExpr e = decomposeLinear(idx, {par.iv(0)});
  EXPECT_FALSE(e.unknown);
  EXPECT_EQ(e.constant, 15);
  EXPECT_EQ(e.coeffs.at(0), -1);
}

TEST(LinearTest, DependsOnIvsTransitively) {
  TestFunc f;
  ParallelOp par = f.openThreadParallel();
  Builder &b = f.b;
  Value x = b.addi(par.iv(0), b.constIndex(1));
  Value y = b.muli(x, b.constIndex(2));
  EXPECT_TRUE(dependsOnIvs(y, {par.iv(0)}));
  EXPECT_FALSE(dependsOnIvs(b.constIndex(3), {par.iv(0)}));
}

//===----------------------------------------------------------------------===//
// Thread privacy (the §III-A "hole")
//===----------------------------------------------------------------------===//

TEST(ThreadPrivateTest, DirectIvIndexIsPrivate) {
  TestFunc f;
  ParallelOp par = f.openThreadParallel();
  Value v = f.b.constF32(1.0);
  f.b.store(v, f.argA(), {par.iv(0)});
  Op *store = par.body().back();
  EXPECT_TRUE(isThreadPrivateAccess(store, {par.iv(0)}));
}

TEST(ThreadPrivateTest, OffsetIvIndexIsPrivate) {
  // a[tid + 1] is still injective in tid.
  TestFunc f;
  ParallelOp par = f.openThreadParallel();
  Builder &b = f.b;
  Value idx = b.addi(par.iv(0), b.constIndex(1));
  b.store(b.constF32(1.0), f.argA(), {idx});
  Op *store = par.body().back();
  EXPECT_TRUE(isThreadPrivateAccess(store, {par.iv(0)}));
}

TEST(ThreadPrivateTest, ConstantIndexIsShared) {
  TestFunc f;
  ParallelOp par = f.openThreadParallel();
  Value i = f.b.constIndex(0);
  f.b.store(f.b.constF32(1.0), f.argA(), {i});
  Op *store = par.body().back();
  EXPECT_FALSE(isThreadPrivateAccess(store, {par.iv(0)}));
}

TEST(ThreadPrivateTest, MissingIvDimensionIsShared) {
  // In a 2-D block, a[iv0] collides across iv1.
  TestFunc f;
  ParallelOp par = f.openThreadParallel(2);
  f.b.store(f.b.constF32(1.0), f.argA(), {par.iv(0)});
  Op *store = par.body().back();
  EXPECT_FALSE(isThreadPrivateAccess(store, {par.iv(0), par.iv(1)}));
}

//===----------------------------------------------------------------------===//
// Uniformity (required for interchange, §III-B2)
//===----------------------------------------------------------------------===//

TEST(UniformTest, ConstantsAndArgsAreUniform) {
  TestFunc f;
  ParallelOp par = f.openThreadParallel();
  Value c = f.b.constIndex(3);
  EXPECT_TRUE(isUniform(c, par.op));
  EXPECT_TRUE(isUniform(f.argA(), par.op));
}

TEST(UniformTest, IvIsNotUniform) {
  TestFunc f;
  ParallelOp par = f.openThreadParallel();
  EXPECT_FALSE(isUniform(par.iv(0), par.op));
  Value derived = f.b.addi(par.iv(0), f.b.constIndex(1));
  EXPECT_FALSE(isUniform(derived, par.op));
}

TEST(UniformTest, LoadFromMemoryWrittenInParallelIsNotUniform) {
  TestFunc f;
  ParallelOp par = f.openThreadParallel();
  Builder &b = f.b;
  b.store(b.constF32(1.0), f.argA(), {par.iv(0)});
  Value i = b.constIndex(0);
  Value v = b.load(f.argA(), {i});
  EXPECT_FALSE(isUniform(v, par.op));
}

TEST(UniformTest, LoadFromReadOnlyMemoryIsUniform) {
  TestFunc f;
  ParallelOp par = f.openThreadParallel();
  Builder &b = f.b;
  Value i = b.constIndex(0);
  Value v = b.load(f.argB(), {i});
  EXPECT_TRUE(isUniform(v, par.op));
}

//===----------------------------------------------------------------------===//
// Barrier effect sets (§III-A / §IV-A)
//===----------------------------------------------------------------------===//

namespace {

/// Builds: thread-parallel { <stores/loads before>; barrier; <after> }.
/// Returns the barrier op. The caller drives the builder callbacks.
Op *buildBarrierKernel(TestFunc &f,
                       const std::function<void(Builder &, Value iv)> &pre,
                       const std::function<void(Builder &, Value iv)> &post) {
  ParallelOp par = f.openThreadParallel();
  pre(f.b, par.iv(0));
  f.b.barrier();
  Op *barrier = par.body().back();
  post(f.b, par.iv(0));
  f.b.yield();
  return barrier;
}

} // namespace

TEST(BarrierEffectTest, NoEffectsMeansRedundant) {
  TestFunc f;
  Op *barrier = buildBarrierKernel(
      f, [](Builder &, Value) {}, [](Builder &, Value) {});
  Op *par = getEnclosingThreadParallel(barrier);
  ASSERT_NE(par, nullptr);
  EXPECT_TRUE(isBarrierRedundant(barrier, par));
}

TEST(BarrierEffectTest, ReadAfterReadIsRedundant) {
  TestFunc f;
  Op *barrier = buildBarrierKernel(
      f,
      [&](Builder &b, Value iv) { b.load(f.argA(), {iv}); },
      [&](Builder &b, Value iv) {
        Value idx = b.addi(iv, b.constIndex(1));
        b.load(f.argA(), {idx});
      });
  Op *par = getEnclosingThreadParallel(barrier);
  EXPECT_TRUE(isBarrierRedundant(barrier, par));
}

TEST(BarrierEffectTest, CrossThreadWriteReadConflicts) {
  // store a[tid]; barrier; load a[tid+1]: the classic exchange — the
  // barrier is required.
  TestFunc f;
  Op *barrier = buildBarrierKernel(
      f,
      [&](Builder &b, Value iv) { b.store(b.constF32(1.0), f.argA(), {iv}); },
      [&](Builder &b, Value iv) {
        Value idx = b.addi(iv, b.constIndex(1));
        b.load(f.argA(), {idx});
      });
  Op *par = getEnclosingThreadParallel(barrier);
  EXPECT_FALSE(isBarrierRedundant(barrier, par));
}

TEST(BarrierEffectTest, SameIndexPairFallsInHole) {
  // store a[tid]; barrier; load a[tid]: same-thread forwarding, the hole
  // of Fig. 5 removes the conflict.
  TestFunc f;
  Op *barrier = buildBarrierKernel(
      f,
      [&](Builder &b, Value iv) { b.store(b.constF32(1.0), f.argA(), {iv}); },
      [&](Builder &b, Value iv) { b.load(f.argA(), {iv}); });
  Op *par = getEnclosingThreadParallel(barrier);
  EXPECT_TRUE(isBarrierRedundant(barrier, par));
}

TEST(BarrierEffectTest, DisjointBasesDoNotConflict) {
  TestFunc f;
  Op *barrier = buildBarrierKernel(
      f,
      [&](Builder &b, Value iv) { b.store(b.constF32(1.0), f.argA(), {iv}); },
      [&](Builder &b, Value iv) {
        Value idx = b.constIndex(0);
        (void)iv;
        b.load(f.argB(), {idx});
      });
  Op *par = getEnclosingThreadParallel(barrier);
  EXPECT_TRUE(isBarrierRedundant(barrier, par));
}

TEST(BarrierEffectTest, EffectSetsSeparateBeforeAndAfter) {
  TestFunc f;
  Op *barrier = buildBarrierKernel(
      f,
      [&](Builder &b, Value iv) {
        Value i = b.constIndex(0);
        (void)iv;
        b.store(b.constF32(1.0), f.argA(), {i});
      },
      [&](Builder &b, Value iv) {
        Value i = b.constIndex(1);
        (void)iv;
        b.load(f.argB(), {i});
      });
  Op *par = getEnclosingThreadParallel(barrier);
  EffectSet before = effectsBefore(barrier, par);
  EffectSet after = effectsAfter(barrier, par);
  ASSERT_FALSE(before.unknown);
  ASSERT_FALSE(after.unknown);
  bool beforeWritesA = false;
  for (auto &e : before.writes)
    if (e.base == f.argA())
      beforeWritesA = true;
  EXPECT_TRUE(beforeWritesA);
  bool afterReadsB = false;
  for (auto &e : after.reads)
    if (e.base == f.argB())
      afterReadsB = true;
  EXPECT_TRUE(afterReadsB);
  EXPECT_FALSE(conflicts(before, after));
}

TEST(BarrierEffectTest, AdjacentBarriersSubsume) {
  // Two barriers in a row: the second covers no new effects and must be
  // recognized as redundant.
  TestFunc f;
  ParallelOp par = f.openThreadParallel();
  Builder &b = f.b;
  b.store(b.constF32(1.0), f.argA(), {par.iv(0)});
  b.barrier();
  b.barrier();
  Op *second = par.body().back();
  Value idx = b.addi(par.iv(0), b.constIndex(1));
  b.load(f.argA(), {idx});
  b.yield();
  EXPECT_TRUE(isBarrierRedundant(second, par.op));
}
