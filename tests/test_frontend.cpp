// Frontend unit tests: lexing of the CUDA-subset token set (launch
// chevrons, qualifiers, literals, #define substitution, the OpenMP
// pragma token), and expression/statement semantics validated by
// compiling small host functions and executing them — precedence,
// associativity, conversions, and short-circuiting are checked against
// the C semantics they must reproduce.
#include "frontend/lexer.h"

#include "driver/compiler.h"

#include <gtest/gtest.h>

using namespace paralift;
using namespace paralift::frontend;

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

namespace {

std::vector<Tok> kinds(const std::string &src) {
  DiagnosticEngine diag;
  std::vector<Token> toks = tokenize(src, diag);
  EXPECT_FALSE(diag.hasErrors()) << diag.str();
  std::vector<Tok> out;
  for (auto &t : toks)
    out.push_back(t.kind);
  return out;
}

} // namespace

TEST(LexerTest, LaunchChevronsAreSingleTokens) {
  auto ks = kinds("k<<<1, 32>>>(a);");
  ASSERT_GE(ks.size(), 3u);
  EXPECT_EQ(ks[0], Tok::Ident);
  EXPECT_EQ(ks[1], Tok::LaunchOpen);
  // ... and the close token appears before the '(':
  bool sawClose = false;
  for (auto k : ks)
    if (k == Tok::LaunchClose)
      sawClose = true;
  EXPECT_TRUE(sawClose);
}

TEST(LexerTest, ShiftVersusChevronDisambiguation) {
  // Without a launch context, >> must lex as a right shift.
  auto ks = kinds("int x = a >> 2;");
  bool sawShr = false;
  for (auto k : ks)
    if (k == Tok::Shr)
      sawShr = true;
  EXPECT_TRUE(sawShr);
}

TEST(LexerTest, CudaQualifiers) {
  auto ks = kinds("__global__ __device__ __shared__ void f();");
  EXPECT_EQ(ks[0], Tok::KwGlobal);
  EXPECT_EQ(ks[1], Tok::KwDevice);
  EXPECT_EQ(ks[2], Tok::KwShared);
  EXPECT_EQ(ks[3], Tok::KwVoid);
}

TEST(LexerTest, FloatLiteralSuffixes) {
  DiagnosticEngine diag;
  auto toks = tokenize("1.5f 2.5 3e2f 7", diag);
  ASSERT_GE(toks.size(), 4u);
  EXPECT_EQ(toks[0].kind, Tok::FloatLit);
  EXPECT_TRUE(toks[0].isFloat32);
  EXPECT_FLOAT_EQ(toks[0].floatVal, 1.5f);
  EXPECT_EQ(toks[1].kind, Tok::FloatLit);
  EXPECT_FALSE(toks[1].isFloat32);
  EXPECT_EQ(toks[2].kind, Tok::FloatLit);
  EXPECT_TRUE(toks[2].isFloat32);
  EXPECT_DOUBLE_EQ(toks[2].floatVal, 300.0);
  EXPECT_EQ(toks[3].kind, Tok::IntLit);
  EXPECT_EQ(toks[3].intVal, 7);
}

TEST(LexerTest, DefineSubstitution) {
  DiagnosticEngine diag;
  auto toks = tokenize("#define SIZE 256\nint x = SIZE;", diag);
  ASSERT_FALSE(diag.hasErrors());
  bool saw256 = false;
  for (auto &t : toks)
    if (t.kind == Tok::IntLit && t.intVal == 256)
      saw256 = true;
  EXPECT_TRUE(saw256);
}

TEST(LexerTest, OmpPragmaCollapse) {
  DiagnosticEngine diag;
  auto toks =
      tokenize("#pragma omp parallel for collapse(2)\nfor(;;){}", diag);
  ASSERT_FALSE(toks.empty());
  EXPECT_EQ(toks[0].kind, Tok::PragmaOmpParallelFor);
  EXPECT_EQ(toks[0].collapse, 2);

  auto plain = tokenize("#pragma omp parallel for\nfor(;;){}", diag);
  EXPECT_EQ(plain[0].collapse, 1);
}

TEST(LexerTest, CommentsAreSkipped) {
  auto ks = kinds("// line comment\nint /* block */ x;");
  ASSERT_GE(ks.size(), 2u);
  EXPECT_EQ(ks[0], Tok::KwInt);
  EXPECT_EQ(ks[1], Tok::Ident);
}

TEST(LexerTest, CompoundAssignAndIncrement) {
  auto ks = kinds("x += 1; y++; z *= 2;");
  bool plusAssign = false, plusPlus = false, starAssign = false;
  for (auto k : ks) {
    plusAssign |= k == Tok::PlusAssign;
    plusPlus |= k == Tok::PlusPlus;
    starAssign |= k == Tok::StarAssign;
  }
  EXPECT_TRUE(plusAssign);
  EXPECT_TRUE(plusPlus);
  EXPECT_TRUE(starAssign);
}

//===----------------------------------------------------------------------===//
// Expression semantics through compilation
//===----------------------------------------------------------------------===//

namespace {

/// Compiles `int f(int a, int b)` with the given body expression and
/// returns f(a, b) evaluated by the VM.
int64_t evalInt(const std::string &expr, int64_t a, int64_t b) {
  std::string src =
      "int f(int a, int b) { return " + expr + "; }";
  DiagnosticEngine diag;
  auto cc = driver::compile(src, transforms::PipelineOptions{}, diag);
  EXPECT_TRUE(cc.ok) << diag.str() << " for: " << expr;
  if (!cc.ok)
    return INT64_MIN;
  driver::Executor exec(cc.module.get(), 1);
  auto res = exec.run("f", {a, b});
  EXPECT_EQ(res.size(), 1u);
  return res.empty() ? INT64_MIN : res[0].i;
}

struct ExprCase {
  const char *expr;
  int64_t a, b, expected;
};

void PrintTo(const ExprCase &c, std::ostream *os) {
  *os << c.expr << " a=" << c.a << " b=" << c.b;
}

class ExprSemanticsTest : public ::testing::TestWithParam<ExprCase> {};

} // namespace

TEST_P(ExprSemanticsTest, MatchesCSemantics) {
  const ExprCase &c = GetParam();
  EXPECT_EQ(evalInt(c.expr, c.a, c.b), c.expected) << c.expr;
}

INSTANTIATE_TEST_SUITE_P(
    Precedence, ExprSemanticsTest,
    ::testing::Values(
        // * binds tighter than +; unary minus; parentheses.
        ExprCase{"a + b * 2", 3, 4, 11},
        ExprCase{"(a + b) * 2", 3, 4, 14},
        ExprCase{"-a + b", 3, 10, 7},
        // Division and remainder truncate toward zero (C semantics).
        ExprCase{"a / b", 7, 2, 3},
        ExprCase{"-7 / 2", 0, 2, -3},
        ExprCase{"a % b", 7, 3, 1},
        ExprCase{"-7 % 3", 0, 3, -1},
        // Shifts and bitwise operators, with C precedence.
        ExprCase{"a << 2", 3, 0, 12},
        ExprCase{"a >> 1", 12, 0, 6},
        ExprCase{"a & b | 8", 6, 3, 10},
        ExprCase{"a ^ b", 6, 3, 5},
        // Comparisons yield 0/1 and chain with arithmetic.
        ExprCase{"(a < b) + (a > b)", 2, 5, 1},
        ExprCase{"a == b", 4, 4, 1},
        ExprCase{"a != b", 4, 4, 0},
        // Ternary.
        ExprCase{"a < b ? a : b", 2, 9, 2},
        ExprCase{"a < b ? a : b", 9, 2, 2}));

INSTANTIATE_TEST_SUITE_P(
    ShortCircuit, ExprSemanticsTest,
    ::testing::Values(
        // && and || short-circuit: the divide by zero on the right must
        // not execute (the VM would trap or yield 0; either way the
        // result proves the branch was skipped).
        ExprCase{"a == 0 || b / a > 0", 0, 5, 1},
        ExprCase{"a != 0 && b / a > 0", 0, 5, 0},
        ExprCase{"a != 0 && b / a > 0", 2, 5, 1}));

//===----------------------------------------------------------------------===//
// Statement semantics
//===----------------------------------------------------------------------===//

namespace {

int64_t runBody(const std::string &body, int64_t a, int64_t b) {
  std::string src = "int f(int a, int b) {\n" + body + "\n}";
  DiagnosticEngine diag;
  auto cc = driver::compile(src, transforms::PipelineOptions{}, diag);
  EXPECT_TRUE(cc.ok) << diag.str() << " for body:\n" << body;
  if (!cc.ok)
    return INT64_MIN;
  driver::Executor exec(cc.module.get(), 1);
  auto res = exec.run("f", {a, b});
  return res.empty() ? INT64_MIN : res[0].i;
}

} // namespace

TEST(StmtSemanticsTest, ForLoopAccumulates) {
  EXPECT_EQ(runBody("int s = 0; for (int i = 0; i < a; i++) s += i;"
                    " return s;",
                    5, 0),
            10);
}

TEST(StmtSemanticsTest, NestedLoopsAndLocalShadowing) {
  EXPECT_EQ(runBody("int s = 0;"
                    "for (int i = 0; i < a; i++)"
                    "  for (int j = 0; j < b; j++)"
                    "    s += i * j;"
                    "return s;",
                    3, 3),
            9);
}

TEST(StmtSemanticsTest, WhileAndDoWhile) {
  EXPECT_EQ(runBody("int n = a; int c = 0;"
                    "while (n > 1) { n = n / 2; c++; }"
                    "return c;",
                    16, 0),
            4);
  // do-while runs at least once even when the condition is false.
  EXPECT_EQ(runBody("int c = 0; do { c++; } while (c < a); return c;", -5,
                    0),
            1);
}

TEST(StmtSemanticsTest, EarlyReturnInsideCondition) {
  EXPECT_EQ(runBody("if (a > b) return a; return b;", 9, 4), 9);
  EXPECT_EQ(runBody("if (a > b) return a; return b;", 1, 4), 4);
}

TEST(StmtSemanticsTest, PointerIndexingReadsAndWrites) {
  const char *src = R"(
void f(float* buf, int n) {
  for (int i = 0; i < n; i++)
    buf[i] = buf[i] * 2.0f + 1.0f;
}
)";
  DiagnosticEngine diag;
  auto cc = driver::compile(src, transforms::PipelineOptions{}, diag);
  ASSERT_TRUE(cc.ok) << diag.str();
  driver::Executor exec(cc.module.get(), 1);
  std::vector<float> buf = {1, 2, 3, 4};
  exec.run("f", {driver::Executor::bufferF32(buf.data(), {4}), int64_t(4)});
  EXPECT_EQ(buf, (std::vector<float>{3, 5, 7, 9}));
}

TEST(StmtSemanticsTest, DefineFeedsKernelConfiguration) {
  // #define used for both the array extent and the launch config — the
  // common Rodinia idiom.
  const char *src = R"(
#define N 32
__global__ void k(float* a) {
  int t = blockIdx.x * blockDim.x + threadIdx.x;
  if (t < N) a[t] = t;
}
void run(float* a) { k<<<2, 16>>>(a); }
)";
  DiagnosticEngine diag;
  auto cc = driver::compile(src, transforms::PipelineOptions{}, diag);
  ASSERT_TRUE(cc.ok) << diag.str();
  driver::Executor exec(cc.module.get(), 2);
  std::vector<float> a(32, -1.0f);
  exec.run("run", {driver::Executor::bufferF32(a.data(), {32})});
  for (int i = 0; i < 32; ++i)
    EXPECT_EQ(a[i], static_cast<float>(i));
}
