// Fault-injection and failure-containment tests: the failpoint spec
// parser and trigger determinism, end-to-end containment of injected
// faults at every trust boundary (parse, pass execution, scheduler
// tasks, disk cache, VM execution), cooperative cancellation and
// per-job deadlines, per-job arena caps — and the capstone soak: the
// Rodinia suite compiled through randomized seeded fault schedules,
// asserting the process never crashes, failed jobs carry attributed
// diagnostics, and jobs that succeed are bit-identical to a fault-free
// compile.
#include "driver/compiler.h"
#include "driver/session.h"
#include "ir/printer.h"
#include "rodinia/rodinia.h"
#include "support/failpoint.h"
#include "support/metrics.h"
#include "transforms/pass_cache.h"
#include "vm/compile.h"
#include "vm/interp.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <vector>
#include <unistd.h>

using namespace paralift;
using transforms::PipelineOptions;

namespace {

/// Every test disarms on exit so failpoints can never leak into another
/// test (the config is process-global, like the metrics registry).
struct FailpointGuard {
  ~FailpointGuard() { failpoint::clearAll(); }
};

driver::SessionOptions
batchOptions(unsigned threads, transforms::PassResultCache *cache,
             driver::ScheduleMode schedule = driver::ScheduleMode::Dag) {
  driver::SessionOptions so;
  so.threads = threads;
  so.cache = cache;
  so.schedule = schedule;
  so.useEnvCache = false; // results must not depend on the environment
  return so;
}

/// Fault-free serial reference compile; must be called with no
/// failpoints armed.
std::string serialReference(const std::string &source,
                            const PipelineOptions &opts = {}) {
  DiagnosticEngine diag;
  transforms::PassRunConfig config;
  config.cache = nullptr;
  auto cc = driver::compile(source, opts, diag, config);
  EXPECT_TRUE(cc.ok) << diag.str();
  return ir::printOp(cc.module.op());
}

uint64_t counterVal(const std::string &name) {
  return metrics::MetricsRegistry::instance().counterValue(name);
}

std::string tempDir(const std::string &tag) {
  auto dir = std::filesystem::temp_directory_path() /
             ("paralift-faults-test-" + tag + "-" +
              std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir.string();
}

} // namespace

//===----------------------------------------------------------------------===//
// Failpoint spec parsing and trigger semantics
//===----------------------------------------------------------------------===//

TEST(FailpointSpec, DisarmedSitesAreInert) {
  FailpointGuard guard;
  failpoint::clearAll();
  EXPECT_FALSE(failpoint::armed());
  EXPECT_EQ(failpoint::evaluate("cache.disk.read"), failpoint::Action::None);
  EXPECT_FALSE(failpoint::shouldFail("pass.run"));
}

TEST(FailpointSpec, RejectsMalformedSpecs) {
  FailpointGuard guard;
  std::string err;
  EXPECT_FALSE(failpoint::configure("nonsense", &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(failpoint::configure("site=", &err));
  EXPECT_FALSE(failpoint::configure("site=badmode", &err));
  EXPECT_FALSE(failpoint::configure("site=delay(abc)", &err));
  EXPECT_FALSE(failpoint::configure("site=throw:junk", &err));
  EXPECT_FALSE(failpoint::configure("site=error:1,1.5", &err))
      << "probability must be < 1";
  EXPECT_FALSE(failpoint::configure("site=error:1,0", &err))
      << "nth must be >= 1";
  // A failed configure leaves the previous configuration armed.
  ASSERT_TRUE(failpoint::configure("keep.me=error", &err)) << err;
  EXPECT_FALSE(failpoint::configure("broken", &err));
  EXPECT_TRUE(failpoint::armed());
  EXPECT_TRUE(failpoint::shouldFail("keep.me"));
}

TEST(FailpointSpec, EmptySpecDisarms) {
  FailpointGuard guard;
  std::string err;
  ASSERT_TRUE(failpoint::configure("a.site=error", &err)) << err;
  EXPECT_TRUE(failpoint::armed());
  ASSERT_TRUE(failpoint::configure("", &err)) << err;
  EXPECT_FALSE(failpoint::armed());
}

TEST(FailpointSpec, NthTriggerFiresFirstHitThenEveryNth) {
  FailpointGuard guard;
  std::string err;
  uint64_t before = counterVal("failpoint.triggered.every3");
  ASSERT_TRUE(failpoint::configure("every3=error:0,3", &err)) << err;
  std::vector<int> fired;
  for (int hit = 1; hit <= 9; ++hit)
    if (failpoint::shouldFail("every3"))
      fired.push_back(hit);
  // An armed site always fires on its first hit, then every Nth after —
  // so arming with a sparse trigger still injects at least once.
  EXPECT_EQ(fired, (std::vector<int>{1, 4, 7}));
  EXPECT_EQ(counterVal("failpoint.triggered.every3"), before + 3);
}

TEST(FailpointSpec, ProbabilityTriggerIsSeedDeterministic) {
  FailpointGuard guard;
  std::string err;
  auto sample = [&] {
    std::vector<int> fired;
    for (int hit = 0; hit < 200; ++hit)
      if (failpoint::shouldFail("prob.site"))
        fired.push_back(hit);
    return fired;
  };
  ASSERT_TRUE(failpoint::configure("prob.site=error:42,0.5", &err)) << err;
  std::vector<int> first = sample();
  // Re-arming the same spec resets hit counters: the triggered set must
  // replay exactly.
  ASSERT_TRUE(failpoint::configure("prob.site=error:42,0.5", &err)) << err;
  EXPECT_EQ(sample(), first);
  // Sanity: p=0.5 over 200 hits lands well inside [40, 160].
  EXPECT_GT(first.size(), 40u);
  EXPECT_LT(first.size(), 160u);
  // A different seed picks a different set.
  ASSERT_TRUE(failpoint::configure("prob.site=error:43,0.5", &err)) << err;
  EXPECT_NE(sample(), first);
}

TEST(FailpointSpec, ThrowModeThrowsInjectedFaultWithSite) {
  FailpointGuard guard;
  std::string err;
  ASSERT_TRUE(failpoint::configure("boom.site=throw", &err)) << err;
  try {
    failpoint::evaluate("boom.site");
    FAIL() << "expected InjectedFault";
  } catch (const failpoint::InjectedFault &f) {
    EXPECT_EQ(f.site(), "boom.site");
    EXPECT_NE(std::string(f.what()).find("boom.site"), std::string::npos);
  }
}

TEST(FailpointSpec, DelayModeSleepsThenProceeds) {
  FailpointGuard guard;
  std::string err;
  ASSERT_TRUE(failpoint::configure("slow.site=delay(30)", &err)) << err;
  auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(failpoint::evaluate("slow.site"), failpoint::Action::None);
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  EXPECT_GE(ms, 25.0);
}

TEST(FailpointSpec, MultiSiteSpecsAreIndependent) {
  FailpointGuard guard;
  std::string err;
  ASSERT_TRUE(
      failpoint::configure("a.site=error;b.site=error:0,2", &err))
      << err;
  EXPECT_TRUE(failpoint::shouldFail("a.site"));  // every hit
  EXPECT_TRUE(failpoint::shouldFail("b.site"));  // hit 1 fires
  EXPECT_FALSE(failpoint::shouldFail("b.site")); // hit 2 skipped
  EXPECT_TRUE(failpoint::shouldFail("b.site"));  // hit 3 fires
  EXPECT_FALSE(failpoint::shouldFail("c.site")); // unarmed site
}

//===----------------------------------------------------------------------===//
// Containment: parse, pass, scheduler
//===----------------------------------------------------------------------===//

TEST(FaultContainmentTest, ParseFaultFailsOnlyItsJob) {
  FailpointGuard guard;
  const auto &suite = rodinia::suite();
  std::string golden = serialReference(suite[0].cudaSource);
  std::string err;
  // Every 2nd parse throws: half the batch fails at the frontend.
  ASSERT_TRUE(failpoint::configure("parse.module=throw:0,2", &err)) << err;
  transforms::PassResultCache cache;
  driver::CompilerSession session(batchOptions(2, &cache));
  auto &a = session.addSource("a", suite[0].cudaSource);
  auto &b = session.addSource("b", suite[0].cudaSource);
  auto &c = session.addSource("c", suite[0].cudaSource);
  auto &d = session.addSource("d", suite[0].cudaSource);
  EXPECT_FALSE(session.compileAll());
  int okCount = 0, failCount = 0;
  for (driver::CompileJob *job : {&a, &b, &c, &d}) {
    if (job->ok()) {
      ++okCount;
      EXPECT_EQ(ir::printOp(job->result().module.op()), golden);
    } else {
      ++failCount;
      EXPECT_NE(job->diagnostics().str().find("module parse threw"),
                std::string::npos)
          << job->diagnostics().str();
      EXPECT_NE(job->diagnostics().str().find("injected fault"),
                std::string::npos);
    }
  }
  EXPECT_EQ(okCount, 2);
  EXPECT_EQ(failCount, 2);
}

TEST(FaultContainmentTest, PassFaultFailsJobBatchSurvives) {
  FailpointGuard guard;
  const auto &suite = rodinia::suite();
  std::vector<std::string> golden;
  for (int i = 0; i < 4; ++i)
    golden.push_back(serialReference(suite[i].cudaSource));
  for (auto schedule :
       {driver::ScheduleMode::Dag, driver::ScheduleMode::Lockstep}) {
    std::string err;
    // One early pass run throws (every 3rd): some jobs fail mid-pipeline.
    ASSERT_TRUE(failpoint::configure("pass.run=throw:0,3", &err)) << err;
    transforms::PassResultCache cache;
    driver::CompilerSession session(batchOptions(4, &cache, schedule));
    std::vector<driver::CompileJob *> jobs;
    for (int i = 0; i < 4; ++i)
      jobs.push_back(&session.addSource(suite[i].id, suite[i].cudaSource));
    session.compileAll(); // must return; some jobs fail
    int failCount = 0;
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(jobs[i]->ready()) << "future did not resolve";
      if (jobs[i]->ok()) {
        EXPECT_EQ(ir::printOp(jobs[i]->result().module.op()), golden[i])
            << suite[i].id;
      } else {
        ++failCount;
        std::string diag = jobs[i]->diagnostics().str();
        EXPECT_NE(diag.find("injected fault"), std::string::npos) << diag;
        EXPECT_NE(diag.find(suite[i].id), std::string::npos)
            << "diagnostic lacks module attribution: " << diag;
      }
    }
    EXPECT_GT(failCount, 0) << "fault schedule injected nothing";
    failpoint::clearAll();
  }
}

TEST(FaultContainmentTest, SchedulerTaskFaultNeverHangsTheBatch) {
  FailpointGuard guard;
  std::string err;
  uint64_t exceptionsBefore = counterVal("scheduler.task_exceptions");
  // Every 7th scheduler task dies before running: its module's chain is
  // severed. The worker loop must contain the throw (no terminate), the
  // scheduler must still drain, and the session sweep must fail the
  // affected jobs so every future resolves.
  ASSERT_TRUE(failpoint::configure("scheduler.task=throw:0,7", &err)) << err;
  const auto &suite = rodinia::suite();
  transforms::PassResultCache cache;
  driver::CompilerSession session(batchOptions(4, &cache));
  std::vector<driver::CompileJob *> jobs;
  for (const auto &b : suite)
    jobs.push_back(&session.addSource(b.id, b.cudaSource));
  session.compileAll(); // must return (no hang), with some jobs failed
  for (driver::CompileJob *job : jobs) {
    ASSERT_TRUE(job->ready());
    if (!job->ok()) {
      EXPECT_FALSE(job->diagnostics().str().empty());
    }
  }
  EXPECT_GT(counterVal("scheduler.task_exceptions"), exceptionsBefore);
}

//===----------------------------------------------------------------------===//
// Cancellation, deadlines, arena caps
//===----------------------------------------------------------------------===//

TEST(CancellationTest, CancelledJobFailsOthersComplete) {
  const auto &suite = rodinia::suite();
  std::string golden = serialReference(suite[0].cudaSource);
  transforms::PassResultCache cache;
  driver::CompilerSession session(batchOptions(2, &cache));
  auto &a = session.addSource("a", suite[0].cudaSource);
  auto &b = session.addSource("b", suite[0].cudaSource);
  auto &c = session.addSource("c", suite[0].cudaSource);
  b.cancel(); // before the batch starts: b never runs a pass
  EXPECT_FALSE(session.compileAll());
  EXPECT_TRUE(a.ok()) << a.diagnostics().str();
  EXPECT_TRUE(c.ok()) << c.diagnostics().str();
  EXPECT_FALSE(b.ok());
  EXPECT_NE(b.diagnostics().str().find("cancelled"), std::string::npos)
      << b.diagnostics().str();
  EXPECT_EQ(ir::printOp(a.result().module.op()), golden);
  EXPECT_EQ(ir::printOp(c.result().module.op()), golden);
}

TEST(CancellationTest, JobTimeoutCancelsCleanly) {
  FailpointGuard guard;
  std::string err;
  // Make every pass take ~30ms so a 10ms deadline reliably expires at
  // the first post-pass boundary, in both schedulers.
  ASSERT_TRUE(failpoint::configure("pass.run=delay(30)", &err)) << err;
  const auto &suite = rodinia::suite();
  for (auto schedule :
       {driver::ScheduleMode::Dag, driver::ScheduleMode::Lockstep}) {
    transforms::PassResultCache cache;
    driver::SessionOptions so = batchOptions(2, &cache, schedule);
    so.jobTimeoutSeconds = 0.01;
    driver::CompilerSession session(std::move(so));
    std::vector<driver::CompileJob *> jobs;
    for (int i = 0; i < 3; ++i)
      jobs.push_back(&session.addSource(suite[i].id, suite[i].cudaSource));
    EXPECT_FALSE(session.compileAll());
    for (driver::CompileJob *job : jobs) {
      ASSERT_TRUE(job->ready()) << "future did not resolve";
      EXPECT_FALSE(job->ok());
      std::string diag = job->diagnostics().str();
      EXPECT_NE(diag.find("deadline exceeded after 0.01s"),
                std::string::npos)
          << diag;
    }
  }
}

TEST(CancellationTest, ArenaCapFailsJobWithCleanDiagnostic) {
  const auto &suite = rodinia::suite();
  for (auto schedule :
       {driver::ScheduleMode::Dag, driver::ScheduleMode::Lockstep}) {
    transforms::PassResultCache cache;
    driver::SessionOptions so = batchOptions(2, &cache, schedule);
    so.maxArenaBytesPerModule = 1; // everything breaches immediately
    driver::CompilerSession session(std::move(so));
    auto &job = session.addSource("capped", suite[0].cudaSource);
    EXPECT_FALSE(session.compileAll());
    EXPECT_FALSE(job.ok());
    EXPECT_NE(job.diagnostics().str().find("IR arena limit exceeded"),
              std::string::npos)
        << job.diagnostics().str();
  }
}

//===----------------------------------------------------------------------===//
// VM execution traps
//===----------------------------------------------------------------------===//

TEST(VmFaultTest, InjectedVmFaultBecomesCallResultError) {
  FailpointGuard guard;
  DiagnosticEngine diag;
  auto cc = driver::compile("int f(int x) { return x + 1; }",
                            PipelineOptions{}, diag);
  ASSERT_TRUE(cc.ok) << diag.str();
  driver::Executor exec(cc.module.get(), 1);
  uint64_t errsBefore = counterVal("vm.exec.errors");
  std::string err;
  ASSERT_TRUE(failpoint::configure("vm.exec=throw", &err)) << err;
  vm::CallResult r = exec.tryRun("f", {int64_t(1)});
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("injected fault at failpoint 'vm.exec'"),
            std::string::npos)
      << r.error;
  EXPECT_EQ(counterVal("vm.exec.errors"), errsBefore + 1);
  // Disarmed, the same executor serves the request fine.
  failpoint::clearAll();
  auto good = exec.run("f", {int64_t(41)});
  ASSERT_EQ(good.size(), 1u);
  EXPECT_EQ(good[0].i, 42);
}

TEST(VmFaultTest, BoundsTrapIsStructuredNotAbort) {
  DiagnosticEngine diag;
  auto cc = driver::compile("void f(float* a, int i) { a[i] = 1.0f; }",
                            PipelineOptions{}, diag);
  ASSERT_TRUE(cc.ok) << diag.str();
  driver::Executor exec(cc.module.get(), 1, /*boundsCheck=*/true);
  uint64_t errsBefore = counterVal("vm.exec.errors");
  std::vector<float> buf(4);
  vm::CallResult r = exec.tryRun(
      "f", {driver::Executor::bufferF32(buf.data(), {4}), int64_t(7)});
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("out of bounds"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("trap in 'f'"), std::string::npos) << r.error;
  EXPECT_EQ(counterVal("vm.exec.errors"), errsBefore + 1);
  // The executor survives the trap and still serves good requests.
  vm::CallResult ok = exec.tryRun(
      "f", {driver::Executor::bufferF32(buf.data(), {4}), int64_t(2)});
  EXPECT_TRUE(ok.ok()) << ok.error;
  EXPECT_EQ(buf[2], 1.0f);
}

TEST(VmFaultTest, ArenaCapBreachTrapsInsideParallelRegion) {
  // The kernel allocas a local array per thread; a tiny per-arena cap
  // traps inside the team threads — the trap must cross the pool join
  // and surface as a structured error, not terminate the process.
  const char *src = R"(
__global__ void k(float* out) {
  int t = threadIdx.x;
  float tmp[64];
  for (int j = 0; j < 64; j++) tmp[j] = 1.0f * j;
  float s = 0.0f;
  for (int j = 0; j < 64; j++) s += tmp[j];
  out[t] = s;
}
void run(float* out) { k<<<1, 4>>>(out); }
)";
  DiagnosticEngine diag;
  auto cc = driver::compile(src, PipelineOptions{}, diag);
  ASSERT_TRUE(cc.ok) << diag.str();
  vm::BCModule bc = vm::compileModule(cc.module.get());
  runtime::ThreadPool pool(2);
  vm::ExecOptions opts;
  opts.maxArenaBytes = 16; // 64 floats never fit
  vm::Interp interp(bc, pool, opts);
  std::vector<float> out(4);
  std::vector<vm::Slot> args{
      interp.makeMemRef(ir::TypeKind::F32, out.data(), {4})};
  vm::CallResult r = interp.tryCall("run", args);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("VM arena limit exceeded"), std::string::npos)
      << r.error;
  // Uncapped, the same bytecode executes fine.
  vm::Interp unlimited(bc, pool, vm::ExecOptions{});
  vm::CallResult ok = unlimited.tryCall("run", args);
  EXPECT_TRUE(ok.ok()) << ok.error;
  EXPECT_EQ(out[0], 2016.0f); // sum 0..63
}

//===----------------------------------------------------------------------===//
// The soak: Rodinia through randomized seeded fault schedules
//===----------------------------------------------------------------------===//

namespace {

/// One soak round: the full Rodinia suite compiled as one batch under a
/// seeded fault schedule. Asserts the containment contract: compileAll
/// returns, every future resolves, failed jobs carry attributed
/// diagnostics, succeeded jobs are bit-identical to the fault-free
/// reference.
void soakRound(unsigned seed, driver::ScheduleMode schedule,
               const std::vector<std::string> &golden) {
  std::string s = std::to_string(seed);
  std::string spec = "pass.run=throw:" + s + ",0.02"
                     ";parse.module=throw:" + s + ",0.1"
                     ";cache.disk.read=error:" + s + ",0.3"
                     ";cache.disk.write=error:" + s + ",0.3";
  std::string err;
  ASSERT_TRUE(failpoint::configure(spec, &err)) << err;

  std::string dir = tempDir("soak-" + s);
  const auto &suite = rodinia::suite();
  {
    // A disk-backed cache so the cache.disk.* faults have a real IO
    // path to corrupt (read/write errors retry, then demote cleanly).
    transforms::PassResultCache cache(dir);
    driver::CompilerSession session(batchOptions(4, &cache, schedule));
    std::vector<driver::CompileJob *> jobs;
    for (const auto &b : suite)
      jobs.push_back(&session.addSource(b.id, b.cudaSource));
    session.compileAll(); // must return, never crash
    for (size_t i = 0; i < jobs.size(); ++i) {
      ASSERT_TRUE(jobs[i]->ready())
          << "seed " << seed << ": future for " << suite[i].id
          << " did not resolve";
      if (jobs[i]->ok()) {
        EXPECT_EQ(ir::printOp(jobs[i]->result().module.op()), golden[i])
            << "seed " << seed << ": " << suite[i].id
            << " succeeded with wrong IR";
      } else {
        std::string diag = jobs[i]->diagnostics().str();
        EXPECT_FALSE(diag.empty())
            << "seed " << seed << ": " << suite[i].id
            << " failed without a diagnostic";
        EXPECT_NE(diag.find(suite[i].id), std::string::npos)
            << "seed " << seed << ": diagnostic lacks module attribution: "
            << diag;
      }
    }
  }
  failpoint::clearAll();
  std::filesystem::remove_all(dir);
}

} // namespace

TEST(FaultSoakTest, RodiniaSurvivesSeededFaultSchedules) {
  FailpointGuard guard;
  // References computed fault-free, once.
  std::vector<std::string> golden;
  for (const auto &b : rodinia::suite())
    golden.push_back(serialReference(b.cudaSource));

  // $PARALIFT_FAULT_SEED lets CI sweep schedules; default covers three.
  std::vector<unsigned> seeds{11, 22, 33};
  if (const char *env = std::getenv("PARALIFT_FAULT_SEED"))
    seeds = {static_cast<unsigned>(std::strtoul(env, nullptr, 10))};

  uint64_t triggeredBefore = counterVal("failpoint.triggered.pass.run") +
                             counterVal("failpoint.triggered.parse.module");
  for (unsigned seed : seeds) {
    soakRound(seed, driver::ScheduleMode::Dag, golden);
    soakRound(seed, driver::ScheduleMode::Lockstep, golden);
  }
  // The soak must actually have injected something, or it proved nothing.
  EXPECT_GT(counterVal("failpoint.triggered.pass.run") +
                counterVal("failpoint.triggered.parse.module"),
            triggeredBefore);
}
