// Differential fuzzing: a seeded generator emits random CUDA-subset
// kernels that are race-free by construction (phase-structured shared-
// memory traffic separated by __syncthreads), then every pipeline
// configuration must produce outputs identical to the lockstep SIMT
// oracle. Any divergence is a miscompilation in barrier lowering,
// fission/min-cut, interchange, or the OpenMP lowering.
#include "driver/compiler.h"
#include "ir/printer.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>
#include <vector>

using namespace paralift;

namespace {

constexpr int kBlockSize = 16;
constexpr int kGridSize = 4;
constexpr int kN = kBlockSize * kGridSize;

/// Generates a random race-free kernel. The program alternates "write
/// phases" (each thread writes only s[tx] / out[gid]) and "read phases"
/// (reads of other threads' s slots), with a __syncthreads between any
/// write->read or read->write transition on s. Expressions use +,-,* and
/// constants only, so all configurations are bitwise comparable.
class KernelGen {
public:
  explicit KernelGen(uint32_t seed) : rng_(seed) {}

  std::string generate() {
    std::ostringstream os;
    os << "__global__ void k(float* a, float* b, float* out, int u) {\n"
       << "  int tx = threadIdx.x;\n"
       << "  int gid = blockIdx.x * blockDim.x + threadIdx.x;\n"
       << "  __shared__ float s[" << kBlockSize << "];\n"
       << "  float r0 = a[gid];\n"
       << "  float r1 = b[gid];\n";
    // Phase 1 always initializes s unconditionally so later cross-thread
    // reads never observe uninitialized memory.
    os << "  s[tx] = " << valueExpr() << ";\n";
    os << "  __syncthreads();\n";

    int phases = 1 + static_cast<int>(rng_() % 3);
    for (int p = 0; p < phases; ++p)
      emitPhase(os, p);

    os << "  out[gid] = r0 + r1 * 0.25f;\n"
       << "}\n"
       << "void run(float* a, float* b, float* out, int u) {\n"
       << "  k<<<" << kGridSize << ", " << kBlockSize
       << ">>>(a, b, out, u);\n"
       << "}\n";
    return os.str();
  }

private:
  /// A float expression over the registers, global inputs, and constants.
  std::string valueExpr() {
    static const char *atoms[] = {"r0", "r1", "a[gid]", "b[gid]",
                                  "1.5f", "0.5f", "2.0f", "-1.0f"};
    std::string e = atoms[rng_() % std::size(atoms)];
    int terms = static_cast<int>(rng_() % 3);
    for (int i = 0; i < terms; ++i) {
      static const char *ops[] = {" + ", " - ", " * "};
      e += ops[rng_() % std::size(ops)];
      e += atoms[rng_() % std::size(atoms)];
    }
    return e;
  }

  /// A read of another thread's shared slot (any rotation is race-free
  /// because reads are barrier-separated from writes).
  std::string sharedRead() {
    int rot = static_cast<int>(rng_() % kBlockSize);
    std::ostringstream os;
    os << "s[(tx + " << rot << ") % " << kBlockSize << "]";
    return os.str();
  }

  void emitPhase(std::ostringstream &os, int phase) {
    switch (rng_() % 5) {
    case 0: {
      // Read phase into a register, optionally guarded (reads are always
      // safe to guard).
      bool guard = rng_() % 2 == 0;
      int bound = 1 + static_cast<int>(rng_() % kBlockSize);
      if (guard)
        os << "  if (tx < " << bound << ") {\n  ";
      os << "  r" << rng_() % 2 << " = " << sharedRead() << " + "
         << valueExpr() << ";\n";
      if (guard)
        os << "  }\n";
      break;
    }
    case 1:
      // Write phase: s[tx] gets a new value everywhere, then a barrier
      // republishes it.
      os << "  r" << rng_() % 2 << " = " << sharedRead() << ";\n";
      os << "  __syncthreads();\n";
      os << "  s[tx] = " << valueExpr() << ";\n";
      os << "  __syncthreads();\n";
      break;
    case 2: {
      // Serial loop with a barrier inside (exercises interchange): each
      // iteration reads neighbours, syncs, writes own slot, syncs.
      int trip = 2 + static_cast<int>(rng_() % 3);
      os << "  for (int i" << phase << " = 0; i" << phase << " < " << trip
         << "; i" << phase << "++) {\n";
      os << "    r0 = " << sharedRead() << " * 0.5f + r1;\n";
      os << "    __syncthreads();\n";
      os << "    s[tx] = r0 + " << valueExpr() << ";\n";
      os << "    __syncthreads();\n";
      os << "  }\n";
      break;
    }
    case 3: {
      // Barrier under a uniform condition (the kernel argument u is the
      // same for every thread), exercising if-interchange in cpuify.
      int bound = static_cast<int>(rng_() % 3);
      os << "  if (u > " << bound << ") {\n";
      os << "    r0 = " << sharedRead() << ";\n";
      os << "    __syncthreads();\n";
      os << "    s[tx] = r0 * 0.5f + " << valueExpr() << ";\n";
      os << "    __syncthreads();\n";
      os << "  }\n";
      break;
    }
    default:
      // Global write phase: out is strictly thread-private, no barrier
      // needed; also mutates a register to keep values flowing.
      os << "  out[gid] = r0 * r1 + " << valueExpr() << ";\n";
      os << "  r1 = r1 + out[gid];\n";
      break;
    }
  }

  std::mt19937 rng_;
};

/// The pipeline configurations under test.
struct FuzzConfig {
  const char *name;
  transforms::PipelineOptions opts;
};

std::vector<FuzzConfig> fuzzConfigs() {
  transforms::PipelineOptions innerPar;
  innerPar.innerSerialize = false;
  transforms::PipelineOptions noMinCut;
  noMinCut.minCut = false;
  return {
      {"default", transforms::PipelineOptions{}},
      {"optDisabled", transforms::PipelineOptions::optDisabled()},
      {"mcuda", transforms::PipelineOptions::mcuda()},
      {"innerPar", innerPar},
      {"noMinCut", noMinCut},
  };
}

struct FuzzCase {
  uint32_t seed;
  FuzzConfig config;
};

void PrintTo(const FuzzCase &c, std::ostream *os) {
  *os << "seed" << c.seed << "_" << c.config.name;
}

class FuzzDifferentialTest : public ::testing::TestWithParam<FuzzCase> {};

std::vector<float> runProgram(driver::CompileResult &cc,
                              const std::vector<float> &a,
                              const std::vector<float> &b, unsigned threads) {
  std::vector<float> av = a, bv = b, out(kN, 0.0f);
  driver::Executor exec(cc.module.get(), threads);
  exec.run("run", {driver::Executor::bufferF32(av.data(), {kN}),
                   driver::Executor::bufferF32(bv.data(), {kN}),
                   driver::Executor::bufferF32(out.data(), {kN}),
                   int64_t(2)});
  return out;
}

} // namespace

TEST_P(FuzzDifferentialTest, MatchesSimtOracle) {
  const FuzzCase &fc = GetParam();
  std::string src = KernelGen(fc.seed).generate();

  std::vector<float> a(kN), b(kN);
  std::mt19937 rng(fc.seed ^ 0x9e3779b9u);
  std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
  for (int i = 0; i < kN; ++i) {
    a[i] = dist(rng);
    b[i] = dist(rng);
  }

  DiagnosticEngine diag;
  auto oracle = driver::compileForSimt(src, diag);
  ASSERT_TRUE(oracle.ok) << diag.str() << "\nsource:\n" << src;
  std::vector<float> expected = runProgram(oracle, a, b, 2);

  auto cc = driver::compile(src, fc.config.opts, diag);
  ASSERT_TRUE(cc.ok) << diag.str() << "\nsource:\n" << src;
  std::vector<float> got = runProgram(cc, a, b, 2);

  ASSERT_EQ(got.size(), expected.size());
  for (int i = 0; i < kN; ++i)
    ASSERT_EQ(got[i], expected[i])
        << "mismatch at " << i << " (config " << fc.config.name << ")\n"
        << "source:\n"
        << src << "\ntranspiled IR:\n"
        << ir::printOp(cc.module.op());
}

namespace {

std::vector<FuzzCase> allFuzzCases() {
  std::vector<FuzzCase> cases;
  for (uint32_t seed = 0; seed < 20; ++seed)
    for (const FuzzConfig &cfg : fuzzConfigs())
      cases.push_back({seed, cfg});
  return cases;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    Seeds, FuzzDifferentialTest, ::testing::ValuesIn(allFuzzCases()),
    [](const ::testing::TestParamInfo<FuzzCase> &info) {
      return "seed" + std::to_string(info.param.seed) + "_" +
             info.param.config.name;
    });

//===----------------------------------------------------------------------===//
// Thread-count invariance: the transpiled program must be deterministic
// across team sizes (work distribution must not change results).
//===----------------------------------------------------------------------===//

class FuzzThreadsTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FuzzThreadsTest, ResultIndependentOfTeamSize) {
  uint32_t seed = GetParam();
  std::string src = KernelGen(seed).generate();
  std::vector<float> a(kN), b(kN);
  std::mt19937 rng(seed * 7919u + 1);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (int i = 0; i < kN; ++i) {
    a[i] = dist(rng);
    b[i] = dist(rng);
  }
  DiagnosticEngine diag;
  auto cc = driver::compile(src, transforms::PipelineOptions{}, diag);
  ASSERT_TRUE(cc.ok) << diag.str();
  std::vector<float> t1 = runProgram(cc, a, b, 1);
  std::vector<float> t2 = runProgram(cc, a, b, 2);
  std::vector<float> t4 = runProgram(cc, a, b, 4);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzThreadsTest, ::testing::Range(0u, 10u));
