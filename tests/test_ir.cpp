// Unit tests for the IR core: types, values, use-def chains, blocks,
// builders, structured-op helpers, cloning, printing, and verification.
#include "ir/builder.h"
#include "ir/ophelpers.h"
#include "ir/printer.h"
#include "ir/verifier.h"

#include <gtest/gtest.h>

using namespace paralift;
using namespace paralift::ir;

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

TEST(TypeTest, ScalarProperties) {
  EXPECT_TRUE(Type::i32().isInteger());
  EXPECT_TRUE(Type::i1().isInteger());
  EXPECT_TRUE(Type::index().isIndex());
  EXPECT_TRUE(Type::f32().isFloat());
  EXPECT_FALSE(Type::f32().isInteger());
  EXPECT_TRUE(Type::f64().isScalar());
  EXPECT_EQ(Type::i32(), Type::i32());
  EXPECT_NE(Type::i32(), Type::i64());
}

TEST(TypeTest, MemRefProperties) {
  Type m = Type::memref(TypeKind::F32, {4, Type::kDynamic});
  EXPECT_TRUE(m.isMemRef());
  EXPECT_EQ(m.rank(), 2u);
  EXPECT_EQ(m.elemKind(), TypeKind::F32);
  EXPECT_EQ(m.numDynamicDims(), 1u);
  EXPECT_FALSE(m.hasStaticShape());
  EXPECT_EQ(m.str(), "memref<4x?xf32>");

  Type s = Type::memref(TypeKind::F64, {2, 3});
  EXPECT_TRUE(s.hasStaticShape());
  EXPECT_EQ(s.staticNumElements(), 6);

  Type scalar = Type::memrefScalar(TypeKind::I32);
  EXPECT_EQ(scalar.rank(), 0u);
  EXPECT_EQ(scalar.str(), "memref<i32>");
}

TEST(TypeTest, ByteWidths) {
  EXPECT_EQ(byteWidth(TypeKind::I1), 1u);
  EXPECT_EQ(byteWidth(TypeKind::I32), 4u);
  EXPECT_EQ(byteWidth(TypeKind::F32), 4u);
  EXPECT_EQ(byteWidth(TypeKind::I64), 8u);
  EXPECT_EQ(byteWidth(TypeKind::F64), 8u);
}

//===----------------------------------------------------------------------===//
// Use-def chains
//===----------------------------------------------------------------------===//

namespace {
/// Creates a module with one empty function and positions a builder in it.
struct TestFunc {
  OwnedModule module;
  FuncOp func;
  Builder b;

  TestFunc()
      : func(FuncOp::create(module.get(), "test", {}, {})),
        b(&func.body()) {}
};
} // namespace

TEST(ValueTest, UseListsMaintained) {
  TestFunc f;
  Value a = f.b.constI32(1);
  Value c = f.b.constI32(2);
  Value sum = f.b.addi(a, c);
  EXPECT_EQ(a.numUses(), 1u);
  EXPECT_EQ(c.numUses(), 1u);
  EXPECT_EQ(sum.numUses(), 0u);

  Op *sumOp = sum.definingOp();
  ASSERT_NE(sumOp, nullptr);
  EXPECT_EQ(sumOp->kind(), OpKind::AddI);
  EXPECT_EQ(sumOp->operand(0), a);

  sumOp->setOperand(0, c);
  EXPECT_EQ(a.numUses(), 0u);
  EXPECT_EQ(c.numUses(), 2u);
}

TEST(ValueTest, ReplaceAllUsesWith) {
  TestFunc f;
  Value a = f.b.constI32(1);
  Value c = f.b.constI32(2);
  Value x = f.b.addi(a, a);
  a.replaceAllUsesWith(c);
  EXPECT_EQ(a.numUses(), 0u);
  EXPECT_EQ(c.numUses(), 2u);
  EXPECT_EQ(x.definingOp()->operand(0), c);
  EXPECT_EQ(x.definingOp()->operand(1), c);
}

TEST(ValueTest, EraseOpRequiresNoUses) {
  TestFunc f;
  Value a = f.b.constI32(1);
  Op *def = a.definingOp();
  def->erase();
  // The block is now empty again except nothing: check front.
  EXPECT_TRUE(f.func.body().empty());
}

TEST(OpTest, MoveBeforeAfter) {
  TestFunc f;
  Value a = f.b.constI32(1);
  Value c = f.b.constI32(2);
  Op *aOp = a.definingOp(), *cOp = c.definingOp();
  EXPECT_TRUE(isBeforeInBlock(aOp, cOp));
  aOp->moveAfter(cOp);
  EXPECT_TRUE(isBeforeInBlock(cOp, aOp));
  aOp->moveBefore(cOp);
  EXPECT_TRUE(isBeforeInBlock(aOp, cOp));
}

TEST(OpTest, BlockSizeAndIteration) {
  TestFunc f;
  f.b.constI32(1);
  f.b.constI32(2);
  f.b.constI32(3);
  EXPECT_EQ(f.func.body().size(), 3u);
  int count = 0;
  for (Op *op : f.func.body()) {
    EXPECT_EQ(op->kind(), OpKind::ConstInt);
    ++count;
  }
  EXPECT_EQ(count, 3);
}

//===----------------------------------------------------------------------===//
// Structured ops
//===----------------------------------------------------------------------===//

TEST(ScfTest, ForOpStructure) {
  TestFunc f;
  Value lb = f.b.constIndex(0);
  Value ub = f.b.constIndex(10);
  Value step = f.b.constIndex(1);
  Value init = f.b.constF32(0.0);
  ForOp loop = ForOp::create(f.b, lb, ub, step, {init});
  Builder body(&loop.body());
  Value next = body.addf(loop.iterArg(0), loop.iterArg(0));
  body.yield({next});
  f.b.ret({});

  EXPECT_EQ(loop.iv().type(), Type::index());
  EXPECT_EQ(loop.numIterArgs(), 1u);
  EXPECT_EQ(loop.op->numResults(), 1u);
  EXPECT_TRUE(verifyOk(f.module.op())) << verify(f.module.op()).front();
}

TEST(ScfTest, IfOpStructure) {
  TestFunc f;
  Value cond = f.b.constBool(true);
  IfOp ifop = IfOp::create(f.b, cond, {Type::i32()}, true);
  {
    Builder t(&ifop.thenBlock());
    t.yield({t.constI32(1)});
    Builder e(&ifop.elseBlock());
    e.yield({e.constI32(2)});
  }
  f.b.ret({});
  EXPECT_TRUE(verifyOk(f.module.op())) << verify(f.module.op()).front();
  EXPECT_EQ(ifop.op->result(0).type(), Type::i32());
}

TEST(ScfTest, WhileOpStructure) {
  TestFunc f;
  Value init = f.b.constI32(0);
  WhileOp loop = WhileOp::create(f.b, {init}, {Type::i32()});
  {
    Builder before(&loop.before());
    Value arg = loop.before().arg(0);
    Value c = before.cmpi(CmpIPred::slt, arg, before.constI32(10));
    before.condition(c, {arg});
    Builder after(&loop.after());
    Value inc = after.addi(loop.after().arg(0), after.constI32(1));
    after.yield({inc});
  }
  f.b.ret({});
  EXPECT_TRUE(verifyOk(f.module.op())) << verify(f.module.op()).front();
}

TEST(ScfTest, ParallelOpStructure) {
  TestFunc f;
  Value lb = f.b.constIndex(0);
  Value ub = f.b.constIndex(16);
  Value step = f.b.constIndex(1);
  ParallelOp par =
      ParallelOp::create(f.b, OpKind::ScfParallel, {lb, lb}, {ub, ub},
                         {step, step});
  par.op->attrs().set("gpu.block", true);
  Builder body(&par.body());
  body.barrier();
  body.yield({});
  f.b.ret({});
  EXPECT_EQ(par.numDims(), 2u);
  EXPECT_TRUE(verifyOk(f.module.op())) << verify(f.module.op()).front();
}

TEST(VerifierTest, CatchesBarrierOutsideParallel) {
  TestFunc f;
  f.b.barrier();
  f.b.ret({});
  auto errs = verify(f.module.op());
  ASSERT_FALSE(errs.empty());
  EXPECT_NE(errs.front().find("barrier"), std::string::npos);
}

TEST(VerifierTest, CatchesTypeMismatch) {
  TestFunc f;
  Value a = f.b.constI32(1);
  Value d = f.b.constI64(2);
  // Bypass Builder assertions by creating the op manually.
  f.b.createOp(OpKind::AddI, {Type::i32()}, {a, d});
  f.b.ret({});
  EXPECT_FALSE(verifyOk(f.module.op()));
}

TEST(VerifierTest, CatchesUseBeforeDef) {
  TestFunc f;
  Value a = f.b.constI32(1);
  Value c = f.b.addi(a, a);
  // Move the add before its operand's definition.
  c.definingOp()->moveBefore(a.definingOp());
  f.b.ret({});
  EXPECT_FALSE(verifyOk(f.module.op()));
}

TEST(VerifierTest, CatchesMissingTerminator) {
  TestFunc f;
  f.b.constI32(1); // no return
  EXPECT_FALSE(verifyOk(f.module.op()));
}

//===----------------------------------------------------------------------===//
// Dominance
//===----------------------------------------------------------------------===//

TEST(DominanceTest, OuterValueVisibleInNestedRegion) {
  TestFunc f;
  Value c = f.b.constIndex(0);
  Value ub = f.b.constIndex(4);
  Value one = f.b.constIndex(1);
  ForOp loop = ForOp::create(f.b, c, ub, one, {});
  Builder body(&loop.body());
  Value inner = body.addi(c, loop.iv()); // uses outer value
  body.yield({});
  f.b.ret({});
  EXPECT_TRUE(dominates(c, inner.definingOp()));
  EXPECT_TRUE(verifyOk(f.module.op()));
}

TEST(DominanceTest, InnerValueNotVisibleOutside) {
  TestFunc f;
  Value c = f.b.constIndex(0);
  Value ub = f.b.constIndex(4);
  Value one = f.b.constIndex(1);
  ForOp loop = ForOp::create(f.b, c, ub, one, {});
  Builder body(&loop.body());
  Value inner = body.constIndex(7);
  body.yield({});
  // Manually create an outer user of the inner value.
  Op *bad = f.b.createOp(OpKind::AddI, {Type::index()}, {inner, inner});
  f.b.ret({});
  EXPECT_FALSE(dominates(inner, bad));
  EXPECT_FALSE(verifyOk(f.module.op()));
  // Clean up the invalid op to keep destructors happy.
  bad->erase();
  f.func.body().terminator()->erase();
  f.b.setInsertionPointToEnd(&f.func.body());
  f.b.ret({});
}

//===----------------------------------------------------------------------===//
// Cloning
//===----------------------------------------------------------------------===//

TEST(CloneTest, ClonesNestedRegionsAndRemaps) {
  TestFunc f;
  Value lb = f.b.constIndex(0);
  Value ub = f.b.constIndex(8);
  Value one = f.b.constIndex(1);
  ForOp loop = ForOp::create(f.b, lb, ub, one, {});
  Builder body(&loop.body());
  Value doubled = body.addi(loop.iv(), loop.iv());
  body.yield({});
  f.b.ret({});

  std::unordered_map<ValueImpl *, Value> map;
  Op *clone = cloneOp(loop.op, map);
  ASSERT_EQ(clone->kind(), OpKind::ScfFor);
  // The clone must have its own body block with its own iv.
  ForOp cloned(clone);
  EXPECT_NE(cloned.iv(), loop.iv());
  // The doubled op inside must reference the cloned iv.
  Op *clonedAdd = cloned.body().front();
  EXPECT_EQ(clonedAdd->kind(), OpKind::AddI);
  EXPECT_EQ(clonedAdd->operand(0), cloned.iv());
  EXPECT_NE(map.find(doubled.impl()), map.end());
  Op::destroy(clone);
}

//===----------------------------------------------------------------------===//
// Printer
//===----------------------------------------------------------------------===//

TEST(PrinterTest, PrintsModuleStructure) {
  TestFunc f;
  Value a = f.b.constI32(42);
  f.b.addi(a, a);
  f.b.ret({});
  std::string text = printOp(f.module.op());
  EXPECT_NE(text.find("module"), std::string::npos);
  EXPECT_NE(text.find("func"), std::string::npos);
  EXPECT_NE(text.find("sym_name = \"test\""), std::string::npos);
  EXPECT_NE(text.find("const.int"), std::string::npos);
  EXPECT_NE(text.find("value = 42"), std::string::npos);
  EXPECT_NE(text.find("addi"), std::string::npos);
}

TEST(PrinterTest, NumbersValuesDeterministically) {
  TestFunc f;
  Value a = f.b.constI32(1);
  Value c = f.b.addi(a, a);
  (void)c;
  f.b.ret({});
  std::string t1 = printOp(f.module.op());
  std::string t2 = printOp(f.module.op());
  EXPECT_EQ(t1, t2);
  EXPECT_NE(t1.find("%0 = const.int"), std::string::npos);
  EXPECT_NE(t1.find("%1 = addi(%0, %0)"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

TEST(HelperTest, GetConstInt) {
  TestFunc f;
  Value a = f.b.constI32(5);
  Value fl = f.b.constF32(2.5);
  f.b.ret({});
  EXPECT_EQ(getConstInt(a), 5);
  EXPECT_FALSE(getConstInt(fl).has_value());
  EXPECT_EQ(getConstFloat(fl), 2.5);
}

TEST(HelperTest, ModuleLookupFunc) {
  OwnedModule m;
  FuncOp f1 = FuncOp::create(m.get(), "alpha", {}, {});
  FuncOp f2 = FuncOp::create(m.get(), "beta", {Type::i32()}, {Type::i32()});
  Builder(&f1.body()).ret({});
  Builder b2(&f2.body());
  b2.ret({f2.arg(0)});
  EXPECT_EQ(m.get().lookupFunc("alpha"), f1.op);
  EXPECT_EQ(m.get().lookupFunc("beta"), f2.op);
  EXPECT_EQ(m.get().lookupFunc("gamma"), nullptr);
  EXPECT_TRUE(verifyOk(m.op()));
}

TEST(HelperTest, IsDefinedOutside) {
  TestFunc f;
  Value outer = f.b.constIndex(0);
  Value ub = f.b.constIndex(4);
  Value one = f.b.constIndex(1);
  ForOp loop = ForOp::create(f.b, outer, ub, one, {});
  Builder body(&loop.body());
  Value inner = body.constIndex(3);
  body.yield({});
  f.b.ret({});
  EXPECT_TRUE(isDefinedOutside(outer, loop.op));
  EXPECT_FALSE(isDefinedOutside(inner, loop.op));
  EXPECT_FALSE(isDefinedOutside(loop.iv(), loop.op));
}

TEST(HelperTest, EnclosingThreadParallel) {
  TestFunc f;
  Value lb = f.b.constIndex(0), ub = f.b.constIndex(4),
        one = f.b.constIndex(1);
  ParallelOp grid =
      ParallelOp::create(f.b, OpKind::ScfParallel, {lb}, {ub}, {one});
  grid.op->attrs().set("gpu.grid", true);
  Builder gb(&grid.body());
  ParallelOp threads =
      ParallelOp::create(gb, OpKind::ScfParallel, {lb}, {ub}, {one});
  threads.op->attrs().set("gpu.block", true);
  Builder tb(&threads.body());
  tb.barrier();
  Op *bar = threads.body().front();
  tb.yield({});
  gb.yield({});
  f.b.ret({});
  EXPECT_EQ(getEnclosingThreadParallel(bar), threads.op);
  EXPECT_EQ(getEnclosing(bar, OpKind::Func), f.func.op);
  EXPECT_TRUE(verifyOk(f.module.op()));
}
