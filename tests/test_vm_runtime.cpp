// Unit tests for the execution layer: thread pool teams and barriers,
// nested-parallel policies, dispatch queues, VM arithmetic semantics
// (f32 rounding, i32 wrapping, division guards), memref bounds checking,
// arena scoping and recycling of allocas, structured call errors
// (tryCall/tryRun), and the lockstep SIMT emulator's barrier semantics
// under divergent-looking but block-uniform control flow.
#include "driver/compiler.h"
#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>

using namespace paralift;
using namespace paralift::runtime;

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, AllTeamMembersRun) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::atomic<uint32_t> tidMask{0};
  pool.parallel([&](unsigned tid, Team &team) {
    EXPECT_EQ(team.size(), 4u);
    count.fetch_add(1);
    tidMask.fetch_or(1u << tid);
  });
  EXPECT_EQ(count.load(), 4);
  EXPECT_EQ(tidMask.load(), 0b1111u);
}

TEST(ThreadPoolTest, SetNumThreadsChangesTeamSize) {
  ThreadPool pool(4);
  pool.setNumThreads(2);
  std::atomic<int> count{0};
  pool.parallel([&](unsigned, Team &team) {
    EXPECT_EQ(team.size(), 2u);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 2);
  // Clamped to capacity.
  pool.setNumThreads(64);
  EXPECT_EQ(pool.numThreads(), 4u);
  pool.setNumThreads(0);
  EXPECT_EQ(pool.numThreads(), 1u);
}

TEST(ThreadPoolTest, TeamBarrierSynchronizes) {
  ThreadPool pool(4);
  std::atomic<int> phase1{0};
  std::vector<int> seen(4, -1);
  pool.parallel([&](unsigned tid, Team &team) {
    phase1.fetch_add(1);
    team.barrier();
    // After the barrier every member observed all phase-1 increments.
    seen[tid] = phase1.load();
  });
  for (int v : seen)
    EXPECT_EQ(v, 4);
}

TEST(ThreadPoolTest, SequentialParallelRegionsReuseWorkers) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel([&](unsigned, Team &) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 4) << "round " << round;
  }
}

TEST(ThreadPoolTest, NestedSerializePolicy) {
  ThreadPool pool(4);
  pool.setNestedPolicy(NestedPolicy::Serialize);
  std::atomic<int> inner{0};
  pool.parallel([&](unsigned, Team &) {
    EXPECT_TRUE(ThreadPool::insideParallel());
    pool.parallel([&](unsigned tid, Team &team) {
      EXPECT_EQ(team.size(), 1u);
      EXPECT_EQ(tid, 0u);
      inner.fetch_add(1);
    });
  });
  EXPECT_EQ(inner.load(), 4); // one serialized inner region per member
}

TEST(ThreadPoolTest, NestedSpawnPolicy) {
  ThreadPool pool(2);
  pool.setNestedPolicy(NestedPolicy::Spawn);
  std::atomic<int> inner{0};
  pool.parallel([&](unsigned, Team &) {
    pool.parallel([&](unsigned, Team &team) {
      EXPECT_EQ(team.size(), 2u);
      inner.fetch_add(1);
    });
  });
  EXPECT_EQ(inner.load(), 4); // 2 outer members x 2 inner members
}

TEST(ThreadPoolTest, SingleThreadPool) {
  ThreadPool pool(1);
  int runs = 0;
  pool.parallel([&](unsigned tid, Team &team) {
    EXPECT_EQ(tid, 0u);
    EXPECT_EQ(team.size(), 1u);
    team.barrier(); // must not deadlock
    ++runs;
  });
  EXPECT_EQ(runs, 1);
}

//===----------------------------------------------------------------------===//
// DispatchQueue
//===----------------------------------------------------------------------===//

TEST(DispatchQueueTest, SyncWaitsForAllTasks) {
  DispatchQueue q;
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i)
    q.async([&] { done.fetch_add(1); });
  q.sync();
  EXPECT_EQ(done.load(), 100);
}

TEST(DispatchQueueTest, TasksRunInOrder) {
  DispatchQueue q;
  std::vector<int> order;
  for (int i = 0; i < 32; ++i)
    q.async([&order, i] { order.push_back(i); });
  q.sync();
  for (int i = 0; i < 32; ++i)
    EXPECT_EQ(order[i], i);
}

TEST(DispatchQueueTest, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    DispatchQueue q;
    for (int i = 0; i < 10; ++i)
      q.async([&] { done.fetch_add(1); });
  } // destructor joins after the queue drains
  EXPECT_EQ(done.load(), 10);
}

//===----------------------------------------------------------------------===//
// VM semantics through the public API
//===----------------------------------------------------------------------===//

namespace {
int64_t runIntFn(const std::string &src, const std::string &fn,
                 std::vector<driver::Executor::Arg> args) {
  DiagnosticEngine diag;
  auto cc = driver::compile(src, transforms::PipelineOptions{}, diag);
  EXPECT_TRUE(cc.ok) << diag.str();
  driver::Executor exec(cc.module.get(), 1);
  auto r = exec.run(fn, args);
  EXPECT_EQ(r.size(), 1u);
  return r.empty() ? 0 : r[0].i;
}
double runFloatFn(const std::string &src, const std::string &fn,
                  std::vector<driver::Executor::Arg> args) {
  DiagnosticEngine diag;
  auto cc = driver::compile(src, transforms::PipelineOptions{}, diag);
  EXPECT_TRUE(cc.ok) << diag.str();
  driver::Executor exec(cc.module.get(), 1);
  auto r = exec.run(fn, args);
  EXPECT_EQ(r.size(), 1u);
  return r.empty() ? 0 : r[0].f;
}
} // namespace

TEST(VmSemanticsTest, Int32ArithmeticWraps) {
  // 2^31 - 1 + 1 wraps to INT32_MIN under i32 semantics.
  EXPECT_EQ(runIntFn("int f(int x) { return x + 1; }", "f",
                     {int64_t(2147483647)}),
            -2147483648LL);
}

TEST(VmSemanticsTest, DivisionByZeroYieldsZero) {
  // The VM defines x/0 = 0 (documented; avoids UB in speculated code).
  EXPECT_EQ(runIntFn("int f(int a, int b) { return a / b; }", "f",
                     {int64_t(5), int64_t(0)}),
            0);
  EXPECT_EQ(runIntFn("int f(int a, int b) { return a % b; }", "f",
                     {int64_t(5), int64_t(0)}),
            0);
}

TEST(VmSemanticsTest, Float32Rounding) {
  // 16777217 is not representable in f32; f32 arithmetic must round.
  double got = runFloatFn(
      "float f(float a) { return a + 1.0f; }", "f", {16777216.0});
  EXPECT_EQ(got, 16777216.0);
}

TEST(VmSemanticsTest, MathBuiltins) {
  EXPECT_NEAR(runFloatFn("float f(float x) { return sqrtf(x); }", "f",
                         {2.0}),
              std::sqrt(2.0f), 1e-6);
  EXPECT_NEAR(runFloatFn("float f(float x) { return expf(logf(x)); }", "f",
                         {3.5}),
              3.5, 1e-5);
  EXPECT_NEAR(runFloatFn("double f(double x) { return pow(x, 3.0); }", "f",
                         {2.0}),
              8.0, 1e-9);
}

TEST(VmSemanticsTest, TernaryAndShortCircuit) {
  const char *src = R"(
int f(int a, int b) {
  int r = 0;
  if (a > 0 && 10 / a > b) {
    r = 1;
  }
  return a > b ? r + 10 : r - 10;
}
)";
  // a=0: short-circuit must not divide by zero (and 0/0==0 anyway).
  EXPECT_EQ(runIntFn(src, "f", {int64_t(0), int64_t(-1)}), 10);
  EXPECT_EQ(runIntFn(src, "f", {int64_t(2), int64_t(1)}), 11);
  // a=1, b=5: 10/1 > 5 sets r=1; ternary takes the else branch.
  EXPECT_EQ(runIntFn(src, "f", {int64_t(1), int64_t(5)}), -9);
}

TEST(VmSemanticsTest, DoWhileExecutesAtLeastOnce) {
  const char *src = R"(
int f(int n) {
  int count = 0;
  do {
    count = count + 1;
  } while (count < n);
  return count;
}
)";
  EXPECT_EQ(runIntFn(src, "f", {int64_t(5)}), 5);
  EXPECT_EQ(runIntFn(src, "f", {int64_t(-3)}), 1);
}

TEST(VmSemanticsTest, BoundsCheckCatchesOutOfRange) {
  const char *src = "void f(float* a, int i) { a[i] = 1.0f; }";
  DiagnosticEngine diag;
  auto cc = driver::compile(src, transforms::PipelineOptions{}, diag);
  ASSERT_TRUE(cc.ok);
  driver::Executor exec(cc.module.get(), 1, /*boundsCheck=*/true);
  std::vector<float> buf(4);
  EXPECT_DEATH(
      exec.run("f", {driver::Executor::bufferF32(buf.data(), {4}),
                     int64_t(7)}),
      "out of bounds");
}

//===----------------------------------------------------------------------===//
// Structured call errors (Interp::tryCall / Executor::tryRun)
//===----------------------------------------------------------------------===//

TEST(TryCallTest, UnknownFunctionReturnsErrorNotAbort) {
  DiagnosticEngine diag;
  auto cc = driver::compile("int f(int x) { return x; }",
                            transforms::PipelineOptions{}, diag);
  ASSERT_TRUE(cc.ok) << diag.str();
  driver::Executor exec(cc.module.get(), 1);
  vm::CallResult r = exec.tryRun("nope", {int64_t(1)});
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("no such function: nope"), std::string::npos)
      << r.error;
  // The executor survives the bad request and still serves good ones.
  auto good = exec.run("f", {int64_t(7)});
  ASSERT_EQ(good.size(), 1u);
  EXPECT_EQ(good[0].i, 7);
}

TEST(TryCallTest, ArityMismatchReturnsErrorNotAbort) {
  DiagnosticEngine diag;
  auto cc = driver::compile("int f(int a, int b) { return a + b; }",
                            transforms::PipelineOptions{}, diag);
  ASSERT_TRUE(cc.ok) << diag.str();
  driver::Executor exec(cc.module.get(), 1);
  vm::CallResult r = exec.tryRun("f", {int64_t(1)});
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("arity mismatch"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("got 1 args"), std::string::npos) << r.error;
  auto good = exec.run("f", {int64_t(2), int64_t(3)});
  ASSERT_EQ(good.size(), 1u);
  EXPECT_EQ(good[0].i, 5);
}

TEST(TryCallTest, RunStillAbortsOnUnknownName) {
  DiagnosticEngine diag;
  auto cc = driver::compile("int f(int x) { return x; }",
                            transforms::PipelineOptions{}, diag);
  ASSERT_TRUE(cc.ok) << diag.str();
  driver::Executor exec(cc.module.get(), 1);
  EXPECT_DEATH(exec.run("nope", {int64_t(1)}), "no such function");
}

//===----------------------------------------------------------------------===//
// Arena recycling (scoped allocas)
//===----------------------------------------------------------------------===//

TEST(ArenaTest, ReleaseRecyclesDescriptorsAndBuffers) {
  vm::Arena arena;
  const vm::MemRef *d0 = nullptr;
  const char *b0 = nullptr;
  for (int iter = 0; iter < 100; ++iter) {
    vm::Arena::Mark m = arena.mark();
    vm::MemRef *d = arena.newDesc();
    char *buf = arena.allocate(256);
    if (iter == 0) {
      d0 = d;
      b0 = buf;
    } else {
      // Same slot position -> same storage, reused in place.
      EXPECT_EQ(d, d0);
      EXPECT_EQ(buf, b0);
    }
    arena.release(m);
    EXPECT_EQ(arena.liveDescs(), 0u);
    EXPECT_EQ(arena.liveBuffers(), 0u);
    // The pool never grows past the high-water mark of one iteration.
    EXPECT_EQ(arena.pooledDescs(), 1u);
    EXPECT_EQ(arena.pooledBuffers(), 1u);
  }
}

TEST(ArenaTest, RecycledDescriptorIsReset) {
  vm::Arena arena;
  vm::Arena::Mark m = arena.mark();
  vm::MemRef *d = arena.newDesc();
  d->rank = 3;
  d->sizes[0] = 42;
  d->data = reinterpret_cast<char *>(0x1);
  arena.release(m);
  vm::MemRef *d2 = arena.newDesc();
  ASSERT_EQ(d2, d);
  EXPECT_EQ(d2->rank, 0);
  EXPECT_EQ(d2->sizes[0], 0);
  EXPECT_EQ(d2->data, nullptr);
}

TEST(ArenaTest, RecycledBufferIsZeroed) {
  // allocate() contract: zeroed storage on every iteration, recycled or
  // fresh — iteration N must observe exactly what iteration 1 did.
  vm::Arena arena;
  vm::Arena::Mark m = arena.mark();
  char *buf = arena.allocate(64);
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(buf[i], 0) << "fresh buffer byte " << i;
  std::memset(buf, 0xAB, 64);
  arena.release(m);
  char *again = arena.allocate(64);
  ASSERT_EQ(again, buf);
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(again[i], 0) << "recycled buffer byte " << i;
}

TEST(ArenaTest, BufferRegrowsInPlaceForLargerRequest) {
  vm::Arena arena;
  vm::Arena::Mark m = arena.mark();
  arena.allocate(16);
  arena.release(m);
  // A larger request on the same slot regrows that buffer; it does not
  // add a second pooled buffer.
  char *big = arena.allocate(4096);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(arena.pooledBuffers(), 1u);
  big[4095] = 1; // touch the end: capacity really grew
  arena.release(m);
  // A smaller request afterwards reuses the grown buffer as-is.
  char *again = arena.allocate(16);
  EXPECT_EQ(again, big);
  EXPECT_EQ(arena.pooledBuffers(), 1u);
}

// Scoped-alloca stress: a kernel whose loop body allocas a local array
// every iteration. With cursor recycling the arena performs zero
// allocations after the first iteration; before, every iteration freed
// and re-malloc'd the buffer. Correctness is asserted over a large trip
// count so a stale-descriptor or stale-buffer bug would surface.
TEST(ArenaTest, ScopedAllocaLoopStress) {
  const char *src = R"(
__global__ void k(float* out, int iters) {
  int t = threadIdx.x;
  float sum = 0.0f;
  for (int it = 0; it < iters; it++) {
    float tmp[8];
    for (int j = 0; j < 8; j++) {
      tmp[j] = 1.0f * j + t;
    }
    for (int j = 0; j < 8; j++) {
      sum += tmp[j];
    }
  }
  out[t] = sum;
}
void run(float* out, int iters) { k<<<1, 4>>>(out, iters); }
)";
  DiagnosticEngine diag;
  auto cc = driver::compile(src, transforms::PipelineOptions{}, diag);
  ASSERT_TRUE(cc.ok) << diag.str();
  const int iters = 10000;
  std::vector<float> out(4, -1.0f);
  driver::Executor exec(cc.module.get(), 1);
  exec.run("run", {driver::Executor::bufferF32(out.data(), {4}),
                   int64_t(iters)});
  // Each iteration contributes sum_j (j + t) = 28 + 8t.
  for (int t = 0; t < 4; ++t)
    EXPECT_FLOAT_EQ(out[t], float(iters) * (28.0f + 8.0f * t)) << t;
}

//===----------------------------------------------------------------------===//
// Lockstep SIMT emulator edge cases
//===----------------------------------------------------------------------===//

namespace {
void runSimtKernel(const std::string &src,
                   std::vector<driver::Executor::Arg> args) {
  DiagnosticEngine diag;
  auto cc = driver::compileForSimt(src, diag);
  ASSERT_TRUE(cc.ok) << diag.str();
  driver::Executor exec(cc.module.get(), 1);
  exec.run("run", args);
}
} // namespace

TEST(SimtTest, ZeroBlockLaunchIsNoOp) {
  const char *src = R"(
__global__ void k(float* a) { a[threadIdx.x] = 1.0f; }
void run(float* a, int blocks) { k<<<blocks, 4>>>(a); }
)";
  std::vector<float> a(4, 0.0f);
  runSimtKernel(src, {driver::Executor::bufferF32(a.data(), {4}),
                      int64_t(0)});
  for (float v : a)
    EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(SimtTest, BarrierOrdersProducerConsumerAcrossThreads) {
  // Thread i produces a[i]; after the barrier thread i consumes
  // a[(i+1) % n]: the emulator must deliver every producer's value.
  const char *src = R"(
__global__ void k(float* a, float* b, int n) {
  int t = threadIdx.x;
  a[t] = 1.0f * t;
  __syncthreads();
  b[t] = a[(t + 1) % n];
}
void run(float* a, float* b, int n) { k<<<1, 16>>>(a, b, n); }
)";
  std::vector<float> a(16, -1.0f), b(16, -1.0f);
  runSimtKernel(src, {driver::Executor::bufferF32(a.data(), {16}),
                      driver::Executor::bufferF32(b.data(), {16}),
                      int64_t(16)});
  for (int t = 0; t < 16; ++t)
    EXPECT_FLOAT_EQ(b[t], static_cast<float>((t + 1) % 16));
}

TEST(SimtTest, PerThreadLocalArraysAreIndependent) {
  const char *src = R"(
__global__ void k(float* out) {
  int t = threadIdx.x;
  float scratch[4];
  for (int i = 0; i < 4; i++) {
    scratch[i] = 1.0f * t + i;
  }
  __syncthreads();
  float sum = 0.0f;
  for (int i = 0; i < 4; i++) {
    sum += scratch[i];
  }
  out[t] = sum;
}
void run(float* out) { k<<<1, 8>>>(out); }
)";
  std::vector<float> out(8, -1.0f);
  runSimtKernel(src, {driver::Executor::bufferF32(out.data(), {8})});
  for (int t = 0; t < 8; ++t)
    EXPECT_FLOAT_EQ(out[t], 4.0f * t + 6.0f) << t;
}

TEST(SimtTest, GridAndBlockIdsCoverLaunch) {
  const char *src = R"(
__global__ void k(int* hits, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    hits[i] = hits[i] + 1;
  }
}
void run(int* hits, int n) { k<<<3, 8>>>(hits, n); }
)";
  std::vector<int32_t> hits(24, 0);
  runSimtKernel(src, {driver::Executor::bufferI32(hits.data(), {24}),
                      int64_t(24)});
  for (int i = 0; i < 24; ++i)
    EXPECT_EQ(hits[i], 1) << i;
}

// The same per-thread-local-array program must survive the full pipeline,
// where the local array is replicated into a block-level buffer by
// fission (alloca replication).
TEST(SimtTest, LocalArrayReplicationThroughPipeline) {
  const char *src = R"(
__global__ void k(float* out) {
  int t = threadIdx.x;
  float scratch[4];
  for (int i = 0; i < 4; i++) {
    scratch[i] = 1.0f * t + i;
  }
  __syncthreads();
  float sum = 0.0f;
  for (int i = 0; i < 4; i++) {
    sum += scratch[i];
  }
  out[t] = sum;
}
void run(float* out) { k<<<1, 8>>>(out); }
)";
  DiagnosticEngine diag;
  auto cc = driver::compile(src, transforms::PipelineOptions{}, diag);
  ASSERT_TRUE(cc.ok) << diag.str();
  std::vector<float> out(8, -1.0f);
  driver::Executor exec(cc.module.get(), 2);
  exec.run("run", {driver::Executor::bufferF32(out.data(), {8})});
  for (int t = 0; t < 8; ++t)
    EXPECT_FLOAT_EQ(out[t], 4.0f * t + 6.0f) << t;
}
