// Unit tests for individual passes and analyses, including the paper's
// worked examples: Fig. 9 barrier elimination and store forwarding,
// Fig. 6 min-cut cache choice, §IV-C parallel LICM legality, OpenMP
// region fusion/hoisting (Figs. 10/11), and frontend diagnostics.
#include "analysis/barrier.h"
#include "driver/compiler.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "transforms/mincut.h"
#include "transforms/passes.h"

#include <gtest/gtest.h>

#include <regex>

using namespace paralift;
using namespace paralift::ir;
using namespace paralift::transforms;

namespace {

/// Compiles source through the frontend + inliner only.
OwnedModule frontendIR(const std::string &src) {
  DiagnosticEngine diag;
  auto cc = driver::compileForSimt(src, diag);
  EXPECT_TRUE(cc.ok) << diag.str();
  return std::move(cc.module);
}

int countOps(Op *root, OpKind kind) {
  int n = 0;
  root->walk([&](Op *op) {
    if (op->kind() == kind)
      ++n;
  });
  return n;
}

} // namespace

//===----------------------------------------------------------------------===//
// Barrier elimination: the Fig. 9 backprop cases
//===----------------------------------------------------------------------===//

TEST(BarrierElimTest, Fig9UnnecessaryBarriersRemoved) {
  // Distilled Fig. 9: barrier #1 separates a write to `node` from a write
  // to `weights` (different non-aliasing buffers) -> removable. The
  // barrier between the weights store and the node read is required.
  const char *src = R"(
__global__ void k(float* input, float* hidden, float* node, float* weights) {
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  if (tx == 0) {
    node[ty] = input[ty];
  }
  __syncthreads();
  weights[ty * 16 + tx] = hidden[ty * 16 + tx];
  __syncthreads();
  weights[ty * 16 + tx] = weights[ty * 16 + tx] * node[ty];
}
void run(float* input, float* hidden, float* node, float* weights) {
  k<<<1, dim3(16, 16)>>>(input, hidden, node, weights);
}
)";
  OwnedModule m = frontendIR(src);
  ASSERT_EQ(countOps(m.op(), OpKind::Barrier), 2);
  runMem2Reg(m.get());
  runBarrierElim(m.get());
  // Barrier #1 is removable (write node / write weights don't conflict;
  // the weights read/write pair around barrier #2 is same-index
  // thread-private). Barrier #2 protects node (written by thread tx==0,
  // read by every thread in the row) -> must stay.
  EXPECT_EQ(countOps(m.op(), OpKind::Barrier), 1);
}

TEST(BarrierElimTest, RequiredBarrierIsKept) {
  // Write A[tx], read A[tx+1]: classic neighbour exchange; the barrier is
  // semantically required and must survive.
  const char *src = R"(
__global__ void k(float* a, float* b) {
  int tx = threadIdx.x;
  a[tx] = 1.0f * tx;
  __syncthreads();
  if (tx < 31) {
    b[tx] = a[tx + 1];
  }
}
void run(float* a, float* b) { k<<<1, 32>>>(a, b); }
)";
  OwnedModule m = frontendIR(src);
  runMem2Reg(m.get());
  runBarrierElim(m.get());
  EXPECT_EQ(countOps(m.op(), OpKind::Barrier), 1);
}

TEST(BarrierElimTest, EffectFreeBarrierRemoved) {
  const char *src = R"(
__global__ void k(float* a) {
  int tx = threadIdx.x;
  __syncthreads();
  a[tx] = 1.0f;
}
void run(float* a) { k<<<1, 32>>>(a); }
)";
  OwnedModule m = frontendIR(src);
  runBarrierElim(m.get());
  EXPECT_EQ(countOps(m.op(), OpKind::Barrier), 0);
}

//===----------------------------------------------------------------------===//
// Store-to-load forwarding across barriers (§IV-B)
//===----------------------------------------------------------------------===//

TEST(StoreForwardTest, ForwardsThreadPrivateAcrossBarrier) {
  // Fig. 9 "Unnecessary Store #1 / Load #1": store weights[ty][tx],
  // barrier, load weights[ty][tx] -> forwarded thanks to the hole; the
  // first store then dies once overwritten.
  const char *src = R"(
__global__ void k(float* hidden, float* out) {
  __shared__ float weights[16][16];
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  weights[ty][tx] = hidden[ty * 16 + tx];
  __syncthreads();
  weights[ty][tx] = weights[ty][tx] * 2.0f;
  out[ty * 16 + tx] = weights[ty][tx];
}
void run(float* hidden, float* out) {
  k<<<1, dim3(16, 16)>>>(hidden, out);
}
)";
  OwnedModule m = frontendIR(src);
  runMem2Reg(m.get());
  runCSE(m.get()); // unify per-use index cast chains
  int loadsBefore = countOps(m.op(), OpKind::Load);
  runStoreForward(m.get());
  int loadsAfter = countOps(m.op(), OpKind::Load);
  // The weights reload after the barrier and the final reload both
  // forward: at least two loads disappear.
  EXPECT_LE(loadsAfter, loadsBefore - 2);
  EXPECT_TRUE(verifyOk(m.op()));
}

TEST(StoreForwardTest, DoesNotForwardAcrossConflictingStore) {
  const char *src = R"(
void f(float* a, float* b, int i, int j) {
  a[i] = 1.0f;
  a[j] = 2.0f;
  b[0] = a[i];
}
)";
  OwnedModule m = frontendIR(src);
  runMem2Reg(m.get());
  int loadsBefore = countOps(m.op(), OpKind::Load);
  runStoreForward(m.get());
  // a[j] may alias a[i]: the load must stay.
  EXPECT_EQ(countOps(m.op(), OpKind::Load), loadsBefore);
}

//===----------------------------------------------------------------------===//
// Min-cut live-value planning (Fig. 6)
//===----------------------------------------------------------------------===//

namespace {
/// Builds the Fig. 6 situation: two loads x,y feeding three pure values
/// a,b,c that are live across the split.
struct Fig6 {
  OwnedModule module;
  Value a, b, c;
  Fig6() {
    ModuleOp m = module.get();
    FuncOp fn = FuncOp::create(
        m, "f", {Type::memref(TypeKind::F32, {Type::kDynamic})}, {});
    Builder bld(&fn.body());
    Value lb = bld.constIndex(0), ub = bld.constIndex(10),
          one = bld.constIndex(1);
    ParallelOp par =
        ParallelOp::create(bld, OpKind::ScfParallel, {lb}, {ub}, {one});
    par.op->attrs().set("gpu.block", true);
    Builder body(&par.body());
    Value x = body.load(fn.arg(0), {par.iv(0)});
    Value y = body.load(fn.arg(0), {par.iv(0)});
    a = body.mulf(x, x);
    b = body.mulf(y, y);
    c = body.subf(x, y);
    body.yield({});
    bld.ret({});
  }
};
} // namespace

TEST(MinCutTest, Fig6PrefersTwoLoadsOverThreeValues) {
  Fig6 f;
  SplitPlan plan = planSplit({f.a, f.b, f.c}, /*useMinCut=*/true);
  // Min cut: cache {x, y} (2 floats) and recompute a, b, c.
  EXPECT_EQ(plan.cached.size(), 2u);
  EXPECT_EQ(plan.recompute.size(), 3u);
}

TEST(MinCutTest, NaiveCachesAllLiveValues) {
  Fig6 f;
  SplitPlan plan = planSplit({f.a, f.b, f.c}, /*useMinCut=*/false);
  EXPECT_EQ(plan.cached.size(), 3u);
  EXPECT_TRUE(plan.recompute.empty());
}

TEST(MinCutTest, MinCutNeverWorseThanNaive) {
  Fig6 f;
  SplitPlan mincut = planSplit({f.a, f.b, f.c}, true);
  SplitPlan naive = planSplit({f.a, f.b, f.c}, false);
  EXPECT_LE(mincut.cached.size(), naive.cached.size());
}

TEST(MinCutTest, EmptyLiveOut) {
  SplitPlan plan = planSplit({}, true);
  EXPECT_TRUE(plan.cached.empty());
  EXPECT_TRUE(plan.recompute.empty());
}

//===----------------------------------------------------------------------===//
// Parallel LICM (§IV-C): only *prior* conflicts matter
//===----------------------------------------------------------------------===//

TEST(LicmTest, HoistsReadDespiteLaterWrite) {
  // The read of in[0] conflicts with the *later* store to in — legal to
  // hoist under the lock-step rule (the paper's key insight); a serial
  // loop could not do this.
  const char *src = R"(
__global__ void k(float* in, float* out, int n) {
  int tid = blockIdx.x * 32 + threadIdx.x;
  float first = in[0];
  if (tid < n) {
    in[tid] = first + 1.0f;
  }
}
void run(float* in, float* out, int n) {
  k<<<1, 32>>>(in, out, n);
}
)";
  OwnedModule m = frontendIR(src);
  runMem2Reg(m.get());
  runCanonicalize(m.get());
  runLICM(m.get());
  // The load of in[0] must now sit outside every scf.parallel.
  bool loadInsideParallel = false;
  m.op()->walk([&](Op *op) {
    if (op->kind() == OpKind::Load &&
        getEnclosing(op, OpKind::ScfParallel))
      loadInsideParallel = true;
  });
  EXPECT_FALSE(loadInsideParallel)
      << ir::printOp(m.op());
}

TEST(LicmTest, DoesNotHoistReadAfterPriorWrite) {
  const char *src = R"(
__global__ void k(float* in, int n) {
  int tid = blockIdx.x * 32 + threadIdx.x;
  if (tid < n) {
    in[tid] = 2.0f;
  }
  float first = in[0];
  if (tid < n) {
    in[tid] = first + in[tid];
  }
}
void run(float* in, int n) { k<<<1, 32>>>(in, n); }
)";
  OwnedModule m = frontendIR(src);
  runMem2Reg(m.get());
  runCanonicalize(m.get());
  runLICM(m.get());
  // in[0] is written by a *prior* op in the body: not hoistable.
  int loadsInside = 0;
  m.op()->walk([&](Op *op) {
    if (op->kind() == OpKind::Load && getEnclosing(op, OpKind::ScfParallel))
      ++loadsInside;
  });
  EXPECT_GT(loadsInside, 0);
}

//===----------------------------------------------------------------------===//
// Canonicalize / CSE / unroll
//===----------------------------------------------------------------------===//

TEST(CanonicalizeTest, FoldsConstantArithAndControlFlow) {
  const char *src = R"(
int f() {
  int x = 3 * 4 + 2;
  if (x > 10) {
    x = x - 1;
  }
  return x;
}
)";
  OwnedModule m = frontendIR(src);
  runMem2Reg(m.get());
  runCanonicalize(m.get());
  // Everything folds to `return 13`.
  EXPECT_EQ(countOps(m.op(), OpKind::ScfIf), 0);
  EXPECT_EQ(countOps(m.op(), OpKind::AddI), 0);
  DiagnosticEngine diag;
  driver::Executor exec(m.get(), 1);
  auto r = exec.run("f", {});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].i, 13);
}

TEST(UnrollTest, FullyUnrollsConstantTripLoop) {
  const char *src = R"(
void f(float* a) {
  for (int i = 0; i < 4; i++) {
    a[i] = 1.0f * i;
  }
}
)";
  OwnedModule m = frontendIR(src);
  runMem2Reg(m.get());
  runCanonicalize(m.get());
  runUnroll(m.get(), 8);
  EXPECT_EQ(countOps(m.op(), OpKind::ScfFor), 0);
  EXPECT_EQ(countOps(m.op(), OpKind::Store), 4);
  EXPECT_TRUE(verifyOk(m.op()));
}

TEST(UnrollTest, LeavesLargeLoopsAlone) {
  const char *src = R"(
void f(float* a) {
  for (int i = 0; i < 1000; i++) {
    a[i] = 0.0f;
  }
}
)";
  OwnedModule m = frontendIR(src);
  runMem2Reg(m.get());
  runCanonicalize(m.get());
  runUnroll(m.get(), 8);
  EXPECT_EQ(countOps(m.op(), OpKind::ScfFor), 1);
}

//===----------------------------------------------------------------------===//
// OpenMP lowering (§IV-D): fusion, hoisting, collapse
//===----------------------------------------------------------------------===//

TEST(OmpLowerTest, FusesAdjacentRegionsWithBarrier) {
  // Two consecutive kernel launches produce adjacent parallel regions;
  // fusion merges them into one omp.parallel with an omp.barrier between
  // the worksharing loops (Fig. 10), paying thread startup once.
  const char *src = R"(
__global__ void k1(float* a, int n) {
  int i = blockIdx.x * 64 + threadIdx.x;
  if (i < n) {
    a[i] = 1.0f;
  }
}
__global__ void k2(float* a, float* b, int n) {
  int i = blockIdx.x * 64 + threadIdx.x;
  if (i < n) {
    b[i] = a[n - 1 - i];
  }
}
void run(float* a, float* b, int n) {
  k1<<<2, 64>>>(a, n);
  k2<<<2, 64>>>(a, b, n);
}
)";
  DiagnosticEngine diag;
  auto cc = driver::compile(src, PipelineOptions{}, diag);
  ASSERT_TRUE(cc.ok) << diag.str();
  EXPECT_EQ(countOps(cc.module.op(), OpKind::OmpParallel), 1)
      << "the two launches should share one parallel region:\n"
      << ir::printOp(cc.module.op());
  EXPECT_GE(countOps(cc.module.op(), OpKind::OmpBarrier), 1);
  EXPECT_EQ(countOps(cc.module.op(), OpKind::OmpWsLoop), 2);
  // Correctness of the fused form.
  int n = 100;
  std::vector<float> a(128, 0.0f), b(128, 0.0f);
  driver::Executor exec(cc.module.get(), 2);
  exec.run("run", {driver::Executor::bufferF32(a.data(), {128}),
                   driver::Executor::bufferF32(b.data(), {128}),
                   int64_t(n)});
  for (int i = 0; i < n; ++i)
    EXPECT_FLOAT_EQ(b[i], 1.0f) << i;
}

TEST(OmpLowerTest, CollapsesGridAndBlockWithoutSharedMem) {
  const char *src = R"(
__global__ void k(float* a, int n) {
  int i = blockIdx.x * 64 + threadIdx.x;
  if (i < n) {
    a[i] = 2.0f;
  }
}
void run(float* a, int n) { k<<<4, 64>>>(a, n); }
)";
  DiagnosticEngine diag;
  auto cc = driver::compile(src, PipelineOptions{}, diag);
  ASSERT_TRUE(cc.ok) << diag.str();
  // Grid and block loops collapse into a single 2-D worksharing loop.
  EXPECT_EQ(countOps(cc.module.op(), OpKind::OmpWsLoop), 1);
  EXPECT_EQ(countOps(cc.module.op(), OpKind::ScfFor), 0);
}

TEST(OmpLowerTest, HoistsRegionOutOfSerialLoop) {
  // A kernel launched inside a host loop: region hoisting moves the
  // thread team outside the loop (Fig. 11).
  const char *src = R"(
__global__ void k(float* a, int n) {
  int i = blockIdx.x * 64 + threadIdx.x;
  if (i < n) {
    a[i] = a[i] + 1.0f;
  }
}
void run(float* a, int n, int iters) {
  for (int t = 0; t < iters; t++) {
    k<<<2, 64>>>(a, n);
  }
}
)";
  DiagnosticEngine diag;
  auto cc = driver::compile(src, PipelineOptions{}, diag);
  ASSERT_TRUE(cc.ok) << diag.str();
  // The omp.parallel must contain the scf.for, not vice versa.
  bool parallelInsideFor = false;
  cc.module.op()->walk([&](Op *op) {
    if (op->kind() == OpKind::OmpParallel &&
        getEnclosing(op, OpKind::ScfFor))
      parallelInsideFor = true;
  });
  EXPECT_FALSE(parallelInsideFor) << ir::printOp(cc.module.op());
  // Correctness: iterations stay ordered via the trailing omp.barrier.
  std::vector<float> a(128, 0.0f);
  driver::Executor exec(cc.module.get(), 2);
  exec.run("run", {driver::Executor::bufferF32(a.data(), {128}),
                   int64_t(128), int64_t(5)});
  for (int i = 0; i < 128; ++i)
    EXPECT_FLOAT_EQ(a[i], 5.0f);
}

//===----------------------------------------------------------------------===//
// mem2reg
//===----------------------------------------------------------------------===//

TEST(Mem2RegTest, PromotesScalarsThroughIfAndFor) {
  const char *src = R"(
int f(int n) {
  int acc = 0;
  for (int i = 0; i < n; i++) {
    if (i % 2 == 0) {
      acc += i;
    }
  }
  return acc;
}
)";
  OwnedModule m = frontendIR(src);
  runMem2Reg(m.get());
  runCanonicalize(m.get());
  EXPECT_EQ(countOps(m.op(), OpKind::Alloca), 0)
      << ir::printOp(m.op());
  driver::Executor exec(m.get(), 1);
  auto r = exec.run("f", {int64_t(10)});
  EXPECT_EQ(r[0].i, 0 + 2 + 4 + 6 + 8);
}

//===----------------------------------------------------------------------===//
// Frontend diagnostics
//===----------------------------------------------------------------------===//

TEST(FrontendDiagTest, RejectsUnknownIdentifier) {
  DiagnosticEngine diag;
  auto cc = driver::compile("void f() { x = 1; }", PipelineOptions{}, diag);
  EXPECT_FALSE(cc.ok);
  EXPECT_NE(diag.str().find("x"), std::string::npos);
  DiagnosticEngine diag2;
  auto cc2 =
      driver::compile("int f() { return y + 1; }", PipelineOptions{}, diag2);
  EXPECT_FALSE(cc2.ok);
  EXPECT_NE(diag2.str().find("undeclared"), std::string::npos);
}

TEST(FrontendDiagTest, RejectsMisplacedReturn) {
  DiagnosticEngine diag;
  auto cc = driver::compile(
      "int f(int n) { for (int i = 0; i < n; i++) { return i; } return 0; }",
      PipelineOptions{}, diag);
  EXPECT_FALSE(cc.ok);
}

TEST(FrontendDiagTest, RejectsKernelCalledAsFunction) {
  DiagnosticEngine diag;
  auto cc = driver::compile(
      "__global__ void k(float* a) { a[0] = 1.0f; }\n"
      "void f(float* a) { k(a); }",
      PipelineOptions{}, diag);
  EXPECT_FALSE(cc.ok);
  EXPECT_NE(diag.str().find("launched"), std::string::npos);
}

TEST(FrontendDiagTest, RejectsLaunchOfUnknownKernel) {
  DiagnosticEngine diag;
  auto cc = driver::compile("void f(float* a) { nosuch<<<1, 32>>>(a); }",
                            PipelineOptions{}, diag);
  EXPECT_FALSE(cc.ok);
}

//===----------------------------------------------------------------------===//
// Barrier motion (§IV-A fictitious-barrier criterion)
//===----------------------------------------------------------------------===//

namespace {

/// Returns the single barrier's zero-based position in its block, or -1.
int barrierIndex(Op *root) {
  Op *barrier = nullptr;
  root->walk([&](Op *op) {
    if (op->kind() == OpKind::Barrier)
      barrier = op;
  });
  if (!barrier)
    return -1;
  int idx = 0;
  for (Op *op = barrier->parent()->front(); op != barrier; op = op->next())
    ++idx;
  return idx;
}

} // namespace

TEST(BarrierMotionTest, HoistsAboveNonConflictingDefs) {
  // The load from c feeds only post-barrier code; the barrier exists to
  // order the write to a against the cross-thread read of a. Hoisting it
  // above the c-load removes the crossing value entirely.
  const char *src = R"(
__global__ void k(float* a, float* b, float* c) {
  int tx = threadIdx.x;
  a[tx] = b[tx];
  float t1 = c[tx];
  __syncthreads();
  b[tx] = a[15 - tx] + t1;
}
void run(float* a, float* b, float* c) { k<<<1, 16>>>(a, b, c); }
)";
  OwnedModule m = frontendIR(src);
  runMem2Reg(m.get());
  runCanonicalize(m.get());
  int before = barrierIndex(m.op());
  ASSERT_GT(before, 0);
  runBarrierMotion(m.get());
  int after = barrierIndex(m.op());
  EXPECT_LT(after, before) << printOp(m.op());
  EXPECT_TRUE(verifyOk(m.op()));
  // The barrier must not have been hoisted above the store to a.
  Op *barrier = nullptr;
  m.op()->walk([&](Op *op) {
    if (op->kind() == OpKind::Barrier)
      barrier = op;
  });
  ASSERT_NE(barrier, nullptr);
  bool storeBefore = false;
  for (Op *op = barrier->parent()->front(); op != barrier; op = op->next())
    if (op->kind() == OpKind::Store)
      storeBefore = true;
  EXPECT_TRUE(storeBefore) << printOp(m.op());
}

TEST(BarrierMotionTest, DoesNotMoveAcrossConflictingStore) {
  // Classic exchange: the store to a conflicts with the cross-thread
  // read after the barrier, so the barrier must stay put.
  const char *src = R"(
__global__ void k(float* a, float* b) {
  int tx = threadIdx.x;
  a[tx] = b[tx];
  __syncthreads();
  b[tx] = a[15 - tx];
}
void run(float* a, float* b) { k<<<1, 16>>>(a, b); }
)";
  OwnedModule m = frontendIR(src);
  runMem2Reg(m.get());
  runCanonicalize(m.get());
  int before = barrierIndex(m.op());
  runBarrierMotion(m.get());
  EXPECT_EQ(barrierIndex(m.op()), before) << printOp(m.op());
}

TEST(BarrierMotionTest, PipelineWithMotionPreservesSemantics) {
  // End-to-end: motion runs inside the default pipeline; the transpiled
  // result must agree with the SIMT oracle.
  const char *src = R"(
__global__ void k(float* a, float* b, float* c) {
  int tx = threadIdx.x;
  a[tx] = b[tx] * 2.0f;
  float t1 = c[tx];
  __syncthreads();
  b[tx] = a[15 - tx] + t1;
}
void run(float* a, float* b, float* c) { k<<<1, 16>>>(a, b, c); }
)";
  std::vector<float> a(16), b(16), c(16), a2(16), b2(16), c2(16);
  for (int i = 0; i < 16; ++i) {
    a[i] = a2[i] = 0;
    b[i] = b2[i] = 1.0f + i;
    c[i] = c2[i] = 0.5f * i;
  }
  DiagnosticEngine diag;
  auto oracle = driver::compileForSimt(src, diag);
  ASSERT_TRUE(oracle.ok) << diag.str();
  driver::Executor simt(oracle.module.get(), 2);
  simt.run("run", {driver::Executor::bufferF32(a.data(), {16}),
                   driver::Executor::bufferF32(b.data(), {16}),
                   driver::Executor::bufferF32(c.data(), {16})});

  auto cc = driver::compile(src, PipelineOptions{}, diag);
  ASSERT_TRUE(cc.ok) << diag.str();
  driver::Executor exec(cc.module.get(), 2);
  exec.run("run", {driver::Executor::bufferF32(a2.data(), {16}),
                   driver::Executor::bufferF32(b2.data(), {16}),
                   driver::Executor::bufferF32(c2.data(), {16})});
  EXPECT_EQ(a, a2);
  EXPECT_EQ(b, b2);
  EXPECT_EQ(c, c2);
}
