// AnalysisManager tests: compute-and-cache semantics, invalidation
// driven by PreservedAnalyses (static and dynamic declarations), the
// verify-mode cross-checker (including that it catches a deliberately
// lying pass), and the acceptance sweep: every pass's declaration holds
// by recomputation across the full Rodinia suite in all pipeline modes.
#include "driver/compiler.h"
#include "frontend/irgen.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "rodinia/rodinia.h"
#include "transforms/analysis_manager.h"
#include "transforms/registry.h"

#include <gtest/gtest.h>

using namespace paralift;
using namespace paralift::ir;
using namespace paralift::transforms;

namespace {

OwnedModule parseOk(const std::string &text) {
  DiagnosticEngine diag;
  auto m = ir::parseModule(text, diag);
  EXPECT_TRUE(m.has_value()) << diag.str();
  return std::move(*m);
}

/// A kernel-shaped module: a gpu.block parallel with a barrier between a
/// thread-private store and a shifted (cross-thread) load — the barrier
/// is NOT redundant.
const char *kBarrierModule = R"(module {
  func {sym_name = "f", res_types = []} {
    [%0: memref<?xf32>, %1: memref<?xf32>]:
    %2 = const.int {value = 0} : index
    %3 = const.int {value = 16} : index
    %4 = const.int {value = 1} : index
    scf.parallel(%2, %3, %4) {dims = 1, gpu.block = true} {
      [%5: index]:
      %6 = memref.load(%0, %5) : f32
      memref.store(%6, %1, %5)
      polygeist.barrier
      %7 = const.int {value = 1} : index
      %8 = addi(%5, %7) : index
      %9 = remsi(%8, %3) : index
      %10 = memref.load(%1, %9) : f32
      memref.store(%10, %0, %5)
      yield
    }
    return
  }
})";

Op *firstFunc(ModuleOp m) {
  for (Op *op : m.body())
    if (op->kind() == OpKind::Func)
      return op;
  return nullptr;
}

} // namespace

//===----------------------------------------------------------------------===//
// Analysis results
//===----------------------------------------------------------------------===//

TEST(AnalysisResultsTest, BarrierAnalysisSeesRedundancy) {
  OwnedModule m = parseOk(kBarrierModule);
  Op *func = firstFunc(m.get());
  BarrierAnalysis ba = BarrierAnalysis::compute(func);
  ASSERT_EQ(ba.barriers.size(), 1u);
  EXPECT_TRUE(ba.barriers[0].inThreadParallel);
  EXPECT_FALSE(ba.barriers[0].redundant);
  EXPECT_TRUE(ba.noneRedundant()); // the one barrier is non-redundant
  EXPECT_GT(ba.barriers[0].beforeReads, 0u);
  EXPECT_GT(ba.barriers[0].afterWrites, 0u);
}

TEST(AnalysisResultsTest, MemoryAnalysisCounts) {
  OwnedModule m = parseOk(kBarrierModule);
  MemoryAnalysis ma = MemoryAnalysis::compute(firstFunc(m.get()));
  EXPECT_EQ(ma.reads, 2u);
  EXPECT_EQ(ma.writes, 2u);
  EXPECT_EQ(ma.allocs, 0u);
  EXPECT_FALSE(ma.readOnly());
}

TEST(AnalysisResultsTest, AffineAnalysisThreadPrivate) {
  OwnedModule m = parseOk(kBarrierModule);
  AffineAnalysis aa = AffineAnalysis::compute(firstFunc(m.get()));
  ASSERT_EQ(aa.threadParallels.size(), 1u);
  EXPECT_EQ(aa.threadParallels[0].accesses, 4u);
  // The %9 = (%5+1) mod 16 indexed load is cross-thread; the rest are
  // injective in the thread IV.
  EXPECT_EQ(aa.threadParallels[0].threadPrivate, 3u);
}

TEST(AnalysisResultsTest, FingerprintIsDeterministic) {
  OwnedModule m1 = parseOk(kBarrierModule);
  OwnedModule m2 = parseOk(kBarrierModule);
  // Distinct Op instances, identical IR: identical fingerprints.
  EXPECT_EQ(BarrierAnalysis::compute(firstFunc(m1.get())).fingerprint(),
            BarrierAnalysis::compute(firstFunc(m2.get())).fingerprint());
  EXPECT_EQ(MemoryAnalysis::compute(firstFunc(m1.get())).fingerprint(),
            MemoryAnalysis::compute(firstFunc(m2.get())).fingerprint());
  EXPECT_EQ(AffineAnalysis::compute(firstFunc(m1.get())).fingerprint(),
            AffineAnalysis::compute(firstFunc(m2.get())).fingerprint());
}

//===----------------------------------------------------------------------===//
// PreservedAnalyses
//===----------------------------------------------------------------------===//

TEST(PreservedAnalysesTest, SetOperations) {
  EXPECT_TRUE(PreservedAnalyses::all().isAll());
  EXPECT_TRUE(PreservedAnalyses::none().isNone());
  PreservedAnalyses p =
      PreservedAnalyses::none().preserve(AnalysisKind::Barrier);
  EXPECT_TRUE(p.isPreserved(AnalysisKind::Barrier));
  EXPECT_FALSE(p.isPreserved(AnalysisKind::Memory));
  PreservedAnalyses q =
      PreservedAnalyses::none().preserve(AnalysisKind::Barrier).preserve(
          AnalysisKind::Memory);
  EXPECT_TRUE(p.intersect(q).isPreserved(AnalysisKind::Barrier));
  EXPECT_FALSE(p.intersect(q).isPreserved(AnalysisKind::Memory));
  EXPECT_EQ(PreservedAnalyses::all().str(), "all");
  EXPECT_EQ(PreservedAnalyses::none().str(), "none");
  EXPECT_EQ(q.str(), "barrier+memory");
}

//===----------------------------------------------------------------------===//
// Caching and invalidation
//===----------------------------------------------------------------------===//

TEST(AnalysisManagerTest, ComputesOnceThenHits) {
  OwnedModule m = parseOk(kBarrierModule);
  Op *func = firstFunc(m.get());
  AnalysisManager am;
  const BarrierAnalysis &a = am.getBarrier(func);
  const BarrierAnalysis &b = am.getBarrier(func);
  EXPECT_EQ(&a, &b); // same cached object
  auto s = am.stats();
  EXPECT_EQ(s.computed[unsigned(AnalysisKind::Barrier)], 1u);
  EXPECT_EQ(s.hits[unsigned(AnalysisKind::Barrier)], 1u);
}

TEST(AnalysisManagerTest, InvalidationRespectsPreservedSet) {
  OwnedModule m = parseOk(kBarrierModule);
  Op *func = firstFunc(m.get());
  AnalysisManager am;
  am.getBarrier(func);
  am.getMemory(func);
  am.getAffine(func);
  am.invalidate(func,
                PreservedAnalyses::none().preserve(AnalysisKind::Barrier));
  EXPECT_TRUE(am.isCached(func, AnalysisKind::Barrier));
  EXPECT_FALSE(am.isCached(func, AnalysisKind::Memory));
  EXPECT_FALSE(am.isCached(func, AnalysisKind::Affine));
  am.invalidate(func);
  EXPECT_FALSE(am.isCached(func, AnalysisKind::Barrier));
  EXPECT_EQ(am.stats().invalidated, 3u);
}

TEST(AnalysisManagerTest, PipelineInvalidationFollowsDeclarations) {
  // cse on already-clean IR changes nothing (dynamic all-preserved) and
  // no constant-trip scf.for exists for unroll; cpuify then restructures
  // the nest and must drop everything.
  OwnedModule m = parseOk(kBarrierModule);
  PassManager pm;
  DiagnosticEngine diag;
  ASSERT_TRUE(buildPipelineFromSpec(pm, "cse,unroll,cpuify", diag));
  Op *func = firstFunc(m.get());
  pm.analysisManager().getBarrier(func);
  pm.analysisManager().getMemory(func);
  ASSERT_TRUE(pm.run(m.get(), diag)) << diag.str();
  EXPECT_FALSE(pm.analysisManager().isCached(func, AnalysisKind::Barrier));
  EXPECT_FALSE(pm.analysisManager().isCached(func, AnalysisKind::Memory));
}

TEST(AnalysisManagerTest, NoOpCleanupPassesPreserveEverything) {
  OwnedModule m = parseOk(kBarrierModule);
  // First canonicalize+cse round reaches the fixpoint...
  DiagnosticEngine diag;
  ASSERT_TRUE(runPassPipeline(m.get(), "canonicalize,cse", diag))
      << diag.str();
  // ...then a pipeline of cleanup passes over clean IR preserves every
  // cached analysis (their dynamic declarations report "unchanged").
  PassManager pm;
  ASSERT_TRUE(buildPipelineFromSpec(
      pm, "canonicalize,cse,mem2reg,store-forward,licm", diag));
  Op *func = firstFunc(m.get());
  pm.analysisManager().getBarrier(func);
  pm.analysisManager().getMemory(func);
  pm.analysisManager().getAffine(func);
  ASSERT_TRUE(pm.run(m.get(), diag)) << diag.str();
  EXPECT_TRUE(pm.analysisManager().isCached(func, AnalysisKind::Barrier));
  EXPECT_TRUE(pm.analysisManager().isCached(func, AnalysisKind::Memory));
  EXPECT_TRUE(pm.analysisManager().isCached(func, AnalysisKind::Affine));
}

TEST(AnalysisManagerTest, BarrierElimConsumesCachedAnalysis) {
  OwnedModule m = parseOk(kBarrierModule);
  PassManager pm;
  DiagnosticEngine diag;
  ASSERT_TRUE(buildPipelineFromSpec(pm, "barrier-elim", diag));
  Op *func = firstFunc(m.get());
  pm.analysisManager().getBarrier(func); // primed: 1 compute
  ASSERT_TRUE(pm.run(m.get(), diag)) << diag.str();
  // The pass consumed the primed result instead of recomputing.
  auto s = pm.analysisManager().stats();
  EXPECT_EQ(s.computed[unsigned(AnalysisKind::Barrier)], 1u);
  EXPECT_GE(s.hits[unsigned(AnalysisKind::Barrier)], 1u);
  // Non-redundant barrier: still present, and the no-op run preserved
  // the cached result.
  EXPECT_NE(printOp(m.op()).find("polygeist.barrier"), std::string::npos);
  EXPECT_TRUE(pm.analysisManager().isCached(func, AnalysisKind::Barrier));
}

namespace {

/// Erases the first store it finds; declares nothing preserved.
class EraseStorePass : public FunctionPass {
public:
  EraseStorePass() : FunctionPass("erase-store", "test-only mutator") {}
  bool runOnFunction(Op *func, DiagnosticEngine &) override {
    Op *victim = nullptr;
    func->walk([&](Op *op) {
      if (!victim && op->kind() == OpKind::Store)
        victim = op;
    });
    if (victim)
      victim->erase();
    return true;
  }
};

/// Records the write count MemoryAnalysis reports through the
/// AnalysisManager at the time it runs.
class ProbeMemoryPass : public FunctionPass {
public:
  ProbeMemoryPass(std::vector<uint64_t> *seen)
      : FunctionPass("probe-memory", "test-only analysis consumer"),
        seen_(seen) {}
  bool runOnFunction(Op *func, DiagnosticEngine &) override {
    seen_->push_back(getAnalysisManager()->getMemory(func).writes);
    return true;
  }
  PreservedAnalyses preservedAnalyses() const override {
    return PreservedAnalyses::all();
  }

private:
  std::vector<uint64_t> *seen_;
};

} // namespace

TEST(AnalysisManagerTest, RepeatInvalidatesBetweenChildren) {
  // A mutating child inside repeat must not leave stale analyses for a
  // consuming sibling: the repeat invalidates per the child's declared
  // preservation after every child run, not just at top level.
  OwnedModule m = parseOk(kBarrierModule); // 2 stores initially
  std::vector<uint64_t> seen;
  auto repeat = std::make_unique<RepeatPass>();
  std::string err;
  ASSERT_TRUE(repeat->setOption("n", "2", &err)) << err;
  repeat->addChild(std::make_unique<EraseStorePass>());
  repeat->addChild(std::make_unique<ProbeMemoryPass>(&seen));
  PassManager pm;
  pm.addPass(std::move(repeat));
  DiagnosticEngine diag;
  ASSERT_TRUE(pm.run(m.get(), diag)) << diag.str();
  // Round 1 erases one store (2 -> 1), round 2 the other (1 -> 0); the
  // probe must observe the fresh counts, not a stale cached result.
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 1u);
  EXPECT_EQ(seen[1], 0u);
}

//===----------------------------------------------------------------------===//
// Verify mode
//===----------------------------------------------------------------------===//

namespace {

/// Erases the first store it finds but claims to preserve everything —
/// the verify-mode cross-check must catch the lie.
class LyingPass : public FunctionPass {
public:
  LyingPass() : FunctionPass("liar", "test-only dishonest pass") {}
  bool runOnFunction(Op *func, DiagnosticEngine &) override {
    Op *victim = nullptr;
    func->walk([&](Op *op) {
      if (!victim && op->kind() == OpKind::Store)
        victim = op;
    });
    if (victim)
      victim->erase();
    return true;
  }
  PreservedAnalyses preservedAnalyses() const override {
    return PreservedAnalyses::all();
  }
};

} // namespace

TEST(AnalysisVerifyTest, CatchesLyingPass) {
  OwnedModule m = parseOk(kBarrierModule);
  PassManager pm;
  pm.addPass(std::make_unique<LyingPass>());
  pm.enableAnalysisVerify();
  DiagnosticEngine diag;
  EXPECT_FALSE(pm.run(m.get(), diag));
  EXPECT_NE(diag.str().find("pass 'liar' declared analysis"),
            std::string::npos)
      << diag.str();
  EXPECT_NE(diag.str().find("preserved but it changed for function 'f'"),
            std::string::npos)
      << diag.str();
}

TEST(AnalysisVerifyTest, HonestPipelinePasses) {
  OwnedModule m = parseOk(kBarrierModule);
  PassManager pm;
  DiagnosticEngine diag;
  ASSERT_TRUE(buildPipelineFromSpec(
      pm,
      "canonicalize,cse,mem2reg,store-forward,licm,barrier-elim,"
      "barrier-motion,unroll,cpuify,omp-lower",
      diag));
  pm.enableAnalysisVerify();
  EXPECT_TRUE(pm.run(m.get(), diag)) << diag.str();
}

// Acceptance criterion: verify-mode recomputation confirms every pass's
// declared PreservedAnalyses across the full Rodinia suite, in every
// pipeline mode the ablation sweep uses (no stale-analysis divergence).
TEST(AnalysisVerifyTest, RodiniaSuiteFullOpts) {
  transforms::PassRunConfig config;
  config.verifyAnalyses = true;
  for (const auto &b : rodinia::suite()) {
    DiagnosticEngine diag;
    auto cc = driver::compile(b.cudaSource, PipelineOptions{}, diag, config);
    EXPECT_TRUE(cc.ok) << b.id << ": " << diag.str();
  }
}

TEST(AnalysisVerifyTest, RodiniaSuiteOptDisabled) {
  transforms::PassRunConfig config;
  config.verifyAnalyses = true;
  for (const auto &b : rodinia::suite()) {
    DiagnosticEngine diag;
    auto cc = driver::compile(b.cudaSource, PipelineOptions::optDisabled(),
                              diag, config);
    EXPECT_TRUE(cc.ok) << b.id << ": " << diag.str();
  }
}

TEST(AnalysisVerifyTest, RodiniaSuiteMcuda) {
  transforms::PassRunConfig config;
  config.verifyAnalyses = true;
  for (const auto &b : rodinia::suite()) {
    DiagnosticEngine diag;
    auto cc = driver::compile(b.cudaSource, PipelineOptions::mcuda(), diag,
                              config);
    EXPECT_TRUE(cc.ok) << b.id << ": " << diag.str();
  }
}
