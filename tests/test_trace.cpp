// Tests for the tracing + metrics observability layer: the trace
// recorder's Chrome JSON output (parses, spans nest per thread, disabled
// mode records nothing, multi-thread tid/ts consistency) and the
// process-wide MetricsRegistry (counters/gauges/histograms, plus the
// cache + scheduler + arena entries a Rodinia batch must populate).
#include "support/metrics.h"
#include "support/trace.h"

#include "driver/session.h"
#include "rodinia/rodinia.h"
#include "runtime/thread_pool.h"
#include "transforms/pass_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

using namespace paralift;

namespace {

// --- a minimal JSON parser, just enough for trace_event output ----------

struct JsonValue {
  enum Kind { Null, Bool, Number, String, Array, Object } kind = Null;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  const JsonValue *find(const std::string &key) const {
    auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
};

class JsonParser {
public:
  explicit JsonParser(const std::string &text) : s_(text) {}

  bool parse(JsonValue &out) { return value(out) && (ws(), pos_ == s_.size()); }

private:
  void ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool lit(const char *t, JsonValue &v, JsonValue::Kind k, bool bval) {
    size_t n = std::strlen(t);
    if (s_.compare(pos_, n, t) != 0)
      return false;
    pos_ += n;
    v.kind = k;
    v.b = bval;
    return true;
  }
  bool value(JsonValue &v) {
    ws();
    if (pos_ >= s_.size())
      return false;
    char c = s_[pos_];
    if (c == '{')
      return object(v);
    if (c == '[')
      return array(v);
    if (c == '"') {
      v.kind = JsonValue::String;
      return string(v.str);
    }
    if (c == 't')
      return lit("true", v, JsonValue::Bool, true);
    if (c == 'f')
      return lit("false", v, JsonValue::Bool, false);
    if (c == 'n')
      return lit("null", v, JsonValue::Null, false);
    return number(v);
  }
  bool number(JsonValue &v) {
    size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start)
      return false;
    v.kind = JsonValue::Number;
    v.num = std::stod(s_.substr(start, pos_ - start));
    return true;
  }
  bool string(std::string &out) {
    if (s_[pos_] != '"')
      return false;
    ++pos_;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size())
          return false;
        switch (s_[pos_]) {
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'u':
          pos_ += 4; // tests never inspect escaped control chars
          out += '?';
          break;
        default:
          out += s_[pos_];
        }
      } else {
        out += s_[pos_];
      }
      ++pos_;
    }
    if (pos_ >= s_.size())
      return false;
    ++pos_; // closing quote
    return true;
  }
  bool array(JsonValue &v) {
    v.kind = JsonValue::Array;
    ++pos_; // [
    ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue elem;
      if (!value(elem))
        return false;
      v.arr.push_back(std::move(elem));
      ws();
      if (pos_ >= s_.size())
        return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool object(JsonValue &v) {
    v.kind = JsonValue::Object;
    ++pos_; // {
    ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      ws();
      std::string key;
      if (pos_ >= s_.size() || !string(key))
        return false;
      ws();
      if (pos_ >= s_.size() || s_[pos_] != ':')
        return false;
      ++pos_;
      JsonValue val;
      if (!value(val))
        return false;
      v.obj.emplace(std::move(key), std::move(val));
      ws();
      if (pos_ >= s_.size())
        return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string &s_;
  size_t pos_ = 0;
};

JsonValue parseTraceJson() {
  std::string text = trace::json();
  JsonValue root;
  JsonParser p(text);
  EXPECT_TRUE(p.parse(root)) << "trace JSON failed to parse:\n" << text;
  EXPECT_EQ(root.kind, JsonValue::Object);
  return root;
}

struct Interval {
  double ts, dur;
  std::string name;
};

/// Per-tid complete ('X') events from a parsed trace, filtered to those
/// recorded at or after `sinceTs`.
std::map<int, std::vector<Interval>> completeEventsByTid(const JsonValue &root,
                                                         double sinceTs) {
  std::map<int, std::vector<Interval>> byTid;
  const JsonValue *events = root.find("traceEvents");
  EXPECT_NE(events, nullptr);
  for (const JsonValue &e : events->arr) {
    const JsonValue *ph = e.find("ph");
    if (!ph || ph->str != "X")
      continue;
    const JsonValue *ts = e.find("ts");
    const JsonValue *dur = e.find("dur");
    const JsonValue *tid = e.find("tid");
    const JsonValue *name = e.find("name");
    EXPECT_TRUE(ts && dur && tid && name) << "X event missing fields";
    if (!ts || !dur || !tid || !name)
      continue;
    if (ts->num < sinceTs)
      continue;
    byTid[static_cast<int>(tid->num)].push_back(
        {ts->num, dur->num, name->str});
  }
  return byTid;
}

/// Spans on one thread must nest: sorted by start, every pair is either
/// disjoint or one contains the other.
void expectProperNesting(std::vector<Interval> iv) {
  std::sort(iv.begin(), iv.end(), [](const Interval &a, const Interval &b) {
    return a.ts < b.ts || (a.ts == b.ts && a.dur > b.dur);
  });
  std::vector<Interval> stack;
  for (const Interval &i : iv) {
    while (!stack.empty() && i.ts >= stack.back().ts + stack.back().dur)
      stack.pop_back();
    if (!stack.empty()) {
      // i starts inside stack.back(): it must end inside it too.
      EXPECT_LE(i.ts + i.dur, stack.back().ts + stack.back().dur)
          << "span '" << i.name << "' overlaps '" << stack.back().name
          << "' without nesting";
    }
    stack.push_back(i);
  }
}

class TraceTest : public ::testing::Test {
protected:
  void SetUp() override {
    sinceTs_ = static_cast<double>(trace::nowMicros());
    countBefore_ = trace::eventCount();
    trace::enable();
  }
  void TearDown() override { trace::disable(); }

  double sinceTs_ = 0;
  size_t countBefore_ = 0;
};

TEST_F(TraceTest, JsonParsesAndSpanFieldsSurvive) {
  {
    trace::TraceSpan outer("outer", "test");
    trace::TraceSpan inner("inner", "test");
    inner.annotate("cache", "hit");
  }
  trace::counterEvent("test.counter", 42);
  trace::asyncBegin("test.job", 7);
  trace::asyncEnd("test.job", 7);

  JsonValue root = parseTraceJson();
  const JsonValue *events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Array);

  bool sawOuter = false, sawInnerArg = false, sawCounter = false,
       sawBegin = false, sawEnd = false;
  for (const JsonValue &e : events->arr) {
    const JsonValue *name = e.find("name");
    const JsonValue *ph = e.find("ph");
    if (!name || !ph)
      continue;
    if (name->str == "outer" && ph->str == "X")
      sawOuter = true;
    if (name->str == "inner" && ph->str == "X") {
      const JsonValue *args = e.find("args");
      ASSERT_NE(args, nullptr);
      const JsonValue *v = args->find("cache");
      sawInnerArg = v && v->str == "hit";
    }
    if (name->str == "test.counter" && ph->str == "C") {
      const JsonValue *args = e.find("args");
      ASSERT_NE(args, nullptr);
      const JsonValue *v = args->find("value");
      sawCounter = v && v->num == 42;
    }
    if (name->str == "test.job" && ph->str == "b")
      sawBegin = e.find("id") && e.find("id")->num == 7;
    if (name->str == "test.job" && ph->str == "e")
      sawEnd = e.find("id") && e.find("id")->num == 7;
  }
  EXPECT_TRUE(sawOuter);
  EXPECT_TRUE(sawInnerArg);
  EXPECT_TRUE(sawCounter);
  EXPECT_TRUE(sawBegin);
  EXPECT_TRUE(sawEnd);
}

TEST_F(TraceTest, SpansNestPerThread) {
  {
    trace::TraceSpan a("a", "test");
    { trace::TraceSpan b("b", "test"); }
    { trace::TraceSpan c("c", "test"); }
  }
  { trace::TraceSpan d("d", "test"); }
  JsonValue root = parseTraceJson();
  auto byTid = completeEventsByTid(root, sinceTs_);
  size_t total = 0;
  for (auto &[tid, iv] : byTid) {
    expectProperNesting(iv);
    total += iv.size();
  }
  EXPECT_GE(total, 4u);
}

TEST_F(TraceTest, DisabledModeRecordsNothing) {
  trace::disable();
  size_t before = trace::eventCount();
  {
    trace::TraceSpan s("invisible", "test");
    s.annotate("k", "v");
    trace::counterEvent("invisible.counter", 1);
    trace::asyncBegin("invisible.job", 1);
    trace::asyncEnd("invisible.job", 1);
  }
  EXPECT_EQ(trace::eventCount(), before);
}

TEST_F(TraceTest, SpanEnabledAtOpenDroppedWhenDisabledAtClose) {
  size_t before = trace::eventCount();
  {
    trace::TraceSpan s("half", "test");
    trace::disable();
  }
  EXPECT_EQ(trace::eventCount(), before);
}

TEST_F(TraceTest, EightThreadSchedulerRunIsConsistent) {
  runtime::ThreadPool pool(8);
  runtime::TaskScheduler sched(&pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i)
    sched.spawn([&](unsigned) {
      trace::TraceSpan s("unit", "test");
      ran.fetch_add(1);
    });
  sched.run();
  EXPECT_EQ(ran.load(), 64);

  JsonValue root = parseTraceJson();
  auto byTid = completeEventsByTid(root, sinceTs_);
  size_t units = 0;
  for (auto &[tid, iv] : byTid) {
    expectProperNesting(iv);
    // ts must be sane: no span may extend past "now".
    double now = static_cast<double>(trace::nowMicros());
    for (const Interval &i : iv) {
      EXPECT_GE(i.ts, sinceTs_);
      EXPECT_LE(i.ts + i.dur, now + 1);
      if (i.name == "unit")
        ++units;
    }
  }
  EXPECT_EQ(units, 64u);
  // The scheduler's own task spans appear on the worker lanes.
  bool sawTask = false;
  for (auto &[tid, iv] : byTid)
    for (const Interval &i : iv)
      if (i.name == "task")
        sawTask = true;
  EXPECT_TRUE(sawTask);
}

// --- metrics ------------------------------------------------------------

TEST(MetricsTest, CounterGaugeHistogramBasics) {
  auto &reg = metrics::MetricsRegistry::instance();
  metrics::Counter &c = reg.counter("test.metric.counter");
  uint64_t base = c.value();
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), base + 5);
  EXPECT_EQ(reg.counterValue("test.metric.counter"), base + 5);
  // Same name resolves to the same node.
  EXPECT_EQ(&reg.counter("test.metric.counter"), &c);

  metrics::Gauge &g = reg.gauge("test.metric.gauge");
  g.set(100);
  g.add(-40);
  EXPECT_EQ(g.value(), 60);
  EXPECT_GE(g.peak(), 100);

  metrics::Histogram &h = reg.histogram("test.metric.hist");
  h.observe(0.001);
  h.observe(0.002);
  h.observe(1.0);
  EXPECT_GE(h.count(), 3u);
  EXPECT_GT(h.sum(), 1.0);
  EXPECT_GT(h.quantile(0.95), h.quantile(0.05));

  std::string text = reg.textSnapshot();
  EXPECT_NE(text.find("test.metric.counter"), std::string::npos);
  std::string json = reg.jsonSnapshot();
  JsonValue root;
  JsonParser p(json);
  ASSERT_TRUE(p.parse(root)) << json;
  const JsonValue *v = root.find("test.metric.counter");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->num, static_cast<double>(base + 5));
  EXPECT_NE(root.find("test.metric.gauge.peak"), nullptr);
  EXPECT_NE(root.find("test.metric.hist.p95_s"), nullptr);
}

TEST(MetricsTest, RodiniaBatchPopulatesCacheSchedulerAndArenaMetrics) {
  auto &reg = metrics::MetricsRegistry::instance();
  uint64_t hitsBefore = reg.counterValue("cache.hits");
  uint64_t tasksBefore = reg.counterValue("scheduler.tasks");
  uint64_t jobsBefore = reg.counterValue("session.jobs_completed");
  uint64_t latBefore = reg.histogram("session.job_latency_s").count();

  transforms::PassResultCache cache;
  for (int round = 0; round < 2; ++round) {
    driver::SessionOptions so;
    so.threads = 4;
    so.cache = &cache;
    so.useEnvCache = false;
    driver::CompilerSession session(std::move(so));
    for (const auto &b : rodinia::suite())
      session.addSource(b.id, b.cudaSource, transforms::PipelineOptions{});
    session.compileAll();
  }

  // Warm second round replays from the shared cache -> hits counted in
  // the unified registry.
  EXPECT_GT(reg.counterValue("cache.hits"), hitsBefore);
  EXPECT_GT(reg.counterValue("scheduler.tasks"), tasksBefore);
  EXPECT_GT(reg.counterValue("session.jobs_completed"), jobsBefore);
  EXPECT_GT(reg.histogram("session.job_latency_s").count(), latBefore);
  // Arena slabs were reserved during the batch and the peak survives.
  EXPECT_GT(reg.gaugePeak("arena.reserved_bytes"), 0);
}

} // namespace
