// Tests for the textual IR parser (src/ir/parser.h): type spellings,
// direct snippets, attribute round trips, error reporting, and the
// print->parse->print fixed-point property over every Rodinia program
// (both the raw frontend output and the fully optimized module).
#include "ir/parser.h"

#include "driver/compiler.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "rodinia/rodinia.h"

#include <gtest/gtest.h>

using namespace paralift;
using namespace paralift::ir;

//===----------------------------------------------------------------------===//
// parseType
//===----------------------------------------------------------------------===//

TEST(ParseTypeTest, Scalars) {
  EXPECT_EQ(parseType("i1"), Type::i1());
  EXPECT_EQ(parseType("i32"), Type::i32());
  EXPECT_EQ(parseType("i64"), Type::i64());
  EXPECT_EQ(parseType("f32"), Type::f32());
  EXPECT_EQ(parseType("f64"), Type::f64());
  EXPECT_EQ(parseType("index"), Type::index());
}

TEST(ParseTypeTest, StaticMemRef) {
  Type t = parseType("memref<4x8xf32>");
  ASSERT_TRUE(t.isMemRef());
  EXPECT_EQ(t.elemKind(), TypeKind::F32);
  EXPECT_EQ(t.shape(), (std::vector<int64_t>{4, 8}));
}

TEST(ParseTypeTest, DynamicMemRef) {
  Type t = parseType("memref<?x3xf64>");
  ASSERT_TRUE(t.isMemRef());
  EXPECT_EQ(t.shape(), (std::vector<int64_t>{Type::kDynamic, 3}));
}

TEST(ParseTypeTest, RankZeroMemRef) {
  Type t = parseType("memref<i32>");
  ASSERT_TRUE(t.isMemRef());
  EXPECT_EQ(t.rank(), 0u);
}

TEST(ParseTypeTest, IndexElementContainingX) {
  // "index" contains an 'x'; the shape splitter must not treat it as a
  // dimension separator.
  Type t = parseType("memref<4xindex>");
  ASSERT_TRUE(t.isMemRef());
  EXPECT_EQ(t.elemKind(), TypeKind::Index);
  EXPECT_EQ(t.shape(), (std::vector<int64_t>{4}));
}

TEST(ParseTypeTest, Malformed) {
  EXPECT_TRUE(parseType("").isNone());
  EXPECT_TRUE(parseType("q32").isNone());
  EXPECT_TRUE(parseType("memref<>").isNone());
  EXPECT_TRUE(parseType("memref<4x>").isNone());
  EXPECT_TRUE(parseType("memref<4x4>").isNone());
  EXPECT_TRUE(parseType("memref<abcxf32>").isNone());
}

//===----------------------------------------------------------------------===//
// Round trip of Type::str
//===----------------------------------------------------------------------===//

class TypeRoundTripTest : public ::testing::TestWithParam<Type> {};

TEST_P(TypeRoundTripTest, StrThenParseIsIdentity) {
  Type t = GetParam();
  EXPECT_EQ(parseType(t.str()), t);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, TypeRoundTripTest,
    ::testing::Values(Type::i1(), Type::i32(), Type::i64(), Type::f32(),
                      Type::f64(), Type::index(),
                      Type::memref(TypeKind::F32, {}),
                      Type::memref(TypeKind::F32, {16}),
                      Type::memref(TypeKind::I32, {2, 3, 4}),
                      Type::memref(TypeKind::F64, {Type::kDynamic}),
                      Type::memref(TypeKind::Index, {Type::kDynamic, 7}),
                      Type::memref(TypeKind::I1, {1, Type::kDynamic, 3})));

//===----------------------------------------------------------------------===//
// Snippet parsing
//===----------------------------------------------------------------------===//

namespace {

/// Parses and verifies; fails the test on diagnostics.
OwnedModule parseOk(const std::string &text) {
  DiagnosticEngine diag;
  auto m = parseModule(text, diag);
  EXPECT_TRUE(m.has_value()) << diag.str();
  if (!m)
    return OwnedModule();
  EXPECT_TRUE(verifyOk(m->op())) << printOp(m->op());
  return std::move(*m);
}

std::string parseError(const std::string &text) {
  DiagnosticEngine diag;
  auto m = parseModule(text, diag);
  EXPECT_FALSE(m.has_value()) << "expected a parse failure";
  return diag.str();
}

} // namespace

TEST(ParserTest, EmptyModule) {
  OwnedModule m = parseOk("module {\n}");
  EXPECT_TRUE(m.get().body().empty());
}

TEST(ParserTest, FuncWithArithmetic) {
  OwnedModule m = parseOk(R"(module {
  func {sym_name = "f"} {
    [%0: i32, %1: i32]:
    %2 = addi(%0, %1) : i32
    %3 = muli(%2, %0) : i32
    return(%3)
  }
})");
  Op *f = m.get().lookupFunc("f");
  ASSERT_NE(f, nullptr);
  Block &body = f->region(0).front();
  EXPECT_EQ(body.numArgs(), 2u);
  EXPECT_EQ(body.size(), 3u);
  EXPECT_EQ(body.front()->kind(), OpKind::AddI);
}

TEST(ParserTest, AttributesOfEveryKind) {
  OwnedModule m = parseOk(R"(module {
  func {sym_name = "f", flag = true, count = -7, rate = 0.5,
        dims = [1, 2, 3]} {
    return
  }
})");
  Op *f = m.get().lookupFunc("f");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->attrs().getBool("flag"), true);
  EXPECT_EQ(f->attrs().getInt("count"), -7);
  EXPECT_EQ(f->attrs().getFloat("rate"), 0.5);
  EXPECT_EQ(f->attrs().getIntVec("dims"), (std::vector<int64_t>{1, 2, 3}));
}

TEST(ParserTest, FloatAttrFormsParse) {
  OwnedModule m = parseOk(R"(module {
  func {sym_name = "f"} {
    %0 = const.float {value = 1.0} : f32
    %1 = const.float {value = 2.5e-3} : f32
    %2 = const.float {value = -0.25} : f64
    %3 = const.float {value = 1e+20} : f64
    return
  }
})");
  Op *f = m.get().lookupFunc("f");
  Op *op = f->region(0).front().front();
  EXPECT_DOUBLE_EQ(op->attrs().getFloat("value"), 1.0);
  op = op->next();
  EXPECT_DOUBLE_EQ(op->attrs().getFloat("value"), 2.5e-3);
  op = op->next();
  EXPECT_DOUBLE_EQ(op->attrs().getFloat("value"), -0.25);
  op = op->next();
  EXPECT_DOUBLE_EQ(op->attrs().getFloat("value"), 1e+20);
}

TEST(ParserTest, NestedRegionsAndLoops) {
  OwnedModule m = parseOk(R"(module {
  func {sym_name = "f"} {
    [%0: memref<?xf32>]:
    %1 = const.int {value = 0} : index
    %2 = const.int {value = 8} : index
    %3 = const.int {value = 1} : index
    scf.parallel(%1, %2, %3) {dims = 1} {
      [%4: index]:
      %5 = memref.load(%0, %4) : f32
      %6 = addf(%5, %5) : f32
      memref.store(%6, %0, %4)
      yield
    }
    return
  }
})");
  Op *f = m.get().lookupFunc("f");
  ASSERT_NE(f, nullptr);
  Op *par = f->region(0).front().back()->prev();
  ASSERT_EQ(par->kind(), OpKind::ScfParallel);
  EXPECT_EQ(par->region(0).front().numArgs(), 1u);
}

TEST(ParserTest, IfWithEmptyElseRegion) {
  OwnedModule m = parseOk(R"(module {
  func {sym_name = "f"} {
    [%0: i1]:
    scf.if(%0) {
      yield
    } {}
    return
  }
})");
  Op *f = m.get().lookupFunc("f");
  Op *ifOp = f->region(0).front().front();
  ASSERT_EQ(ifOp->kind(), OpKind::ScfIf);
  ASSERT_EQ(ifOp->numRegions(), 2u);
  EXPECT_FALSE(ifOp->region(0).empty());
  EXPECT_TRUE(ifOp->region(1).empty());
}

TEST(ParserTest, MultiResultOp) {
  OwnedModule m = parseOk(R"(module {
  func {sym_name = "f"} {
    [%0: i1, %1: i32]:
    %2, %3 = scf.if(%0) : i32, i32 {
      yield(%1, %1)
    } {
      yield(%1, %1)
    }
    return(%2)
  }
})");
  Op *f = m.get().lookupFunc("f");
  Op *ifOp = f->region(0).front().front();
  EXPECT_EQ(ifOp->numResults(), 2u);
}

//===----------------------------------------------------------------------===//
// Errors
//===----------------------------------------------------------------------===//

TEST(ParserErrorTest, UndefinedValue) {
  std::string msg = parseError("module {\n func {sym_name = \"f\"} {\n"
                               "  return(%9)\n }\n}");
  EXPECT_NE(msg.find("undefined value %9"), std::string::npos) << msg;
}

TEST(ParserErrorTest, RedefinedValue) {
  std::string msg = parseError(R"(module {
  func {sym_name = "f"} {
    %0 = const.int {value = 1} : i32
    %0 = const.int {value = 2} : i32
    return
  }
})");
  EXPECT_NE(msg.find("redefinition"), std::string::npos) << msg;
}

TEST(ParserErrorTest, UnknownOp) {
  std::string msg = parseError("module {\n bogus.op\n}");
  EXPECT_NE(msg.find("unknown op"), std::string::npos) << msg;
}

TEST(ParserErrorTest, ResultTypeCountMismatch) {
  std::string msg = parseError(
      "module {\n func {sym_name = \"f\"} {\n"
      "  %0, %1 = const.int {value = 1} : i32\n  return\n }\n}");
  EXPECT_NE(msg.find("2 results but 1 types"), std::string::npos) << msg;
}

TEST(ParserErrorTest, UnterminatedRegion) {
  parseError("module {\n func {sym_name = \"f\"} {\n  return\n");
}

TEST(ParserErrorTest, UnterminatedString) {
  parseError("module {\n func {sym_name = \"f} {\n  return\n }\n}");
}

TEST(ParserErrorTest, TopLevelMustBeModule) {
  std::string msg = parseError("return");
  EXPECT_NE(msg.find("top-level op must be a module"), std::string::npos)
      << msg;
}

TEST(ParserErrorTest, TrailingGarbage) {
  parseError("module {\n}\nmodule {\n}");
}

TEST(ParserErrorTest, BadMemRefShape) {
  parseError("module {\n func {sym_name = \"f\"} {\n"
             "  [%0: memref<4x4>]:\n  return\n }\n}");
}

//===----------------------------------------------------------------------===//
// Print -> parse -> print fixed point over real programs
//===----------------------------------------------------------------------===//

namespace {

/// Asserts print(parse(print(m))) == print(m) and that the reparsed
/// module verifies.
void expectRoundTrip(ModuleOp m) {
  std::string text = printOp(m.op);
  DiagnosticEngine diag;
  auto reparsed = parseModule(text, diag);
  ASSERT_TRUE(reparsed.has_value()) << diag.str() << "\n" << text;
  EXPECT_TRUE(verifyOk(reparsed->op()));
  EXPECT_EQ(printOp(reparsed->op()), text);
}

struct RoundTripCase {
  std::string name;
  const char *source;
  bool optimized;
};

void PrintTo(const RoundTripCase &c, std::ostream *os) { *os << c.name; }

class RodiniaRoundTripTest : public ::testing::TestWithParam<RoundTripCase> {
};

std::vector<RoundTripCase> allCases() {
  std::vector<RoundTripCase> cases;
  for (const auto &b : rodinia::suite()) {
    cases.push_back({b.id + "_frontend", b.cudaSource, false});
    cases.push_back({b.id + "_optimized", b.cudaSource, true});
    if (b.openmpSource)
      cases.push_back({b.id + "_openmp", b.openmpSource, true});
  }
  return cases;
}

} // namespace

TEST_P(RodiniaRoundTripTest, PrintParsePrintIsFixedPoint) {
  const RoundTripCase &c = GetParam();
  DiagnosticEngine diag;
  driver::CompileResult cc =
      c.optimized ? driver::compile(c.source, transforms::PipelineOptions{},
                                    diag)
                  : driver::compileForSimt(c.source, diag);
  ASSERT_TRUE(cc.ok) << diag.str();
  expectRoundTrip(cc.module.get());
}

INSTANTIATE_TEST_SUITE_P(
    AllRodinia, RodiniaRoundTripTest, ::testing::ValuesIn(allCases()),
    [](const ::testing::TestParamInfo<RoundTripCase> &info) {
      std::string n = info.param.name;
      for (char &ch : n)
        if (!std::isalnum(static_cast<unsigned char>(ch)))
          ch = '_';
      return n;
    });

//===----------------------------------------------------------------------===//
// Pass registry (transforms/registry.h)
//===----------------------------------------------------------------------===//

#include "transforms/registry.h"

TEST(PassRegistryTest, LookupKnownAndUnknown) {
  EXPECT_NE(transforms::lookupPass("canonicalize"), nullptr);
  EXPECT_NE(transforms::lookupPass("barrier-motion"), nullptr);
  EXPECT_NE(transforms::lookupPass("cpuify"), nullptr);
  EXPECT_EQ(transforms::lookupPass("no-such-pass"), nullptr);
}

TEST(PassRegistryTest, NamesAreUnique) {
  const auto &passes = transforms::passRegistry();
  for (size_t i = 0; i < passes.size(); ++i)
    for (size_t j = i + 1; j < passes.size(); ++j)
      EXPECT_NE(passes[i].name, passes[j].name);
}

TEST(PassRegistryTest, PipelineFoldsConstants) {
  OwnedModule m = parseOk(R"(module {
  func {sym_name = "f"} {
    %0 = const.int {value = 20} : i32
    %1 = const.int {value = 22} : i32
    %2 = addi(%0, %1) : i32
    return(%2)
  }
})");
  DiagnosticEngine diag;
  ASSERT_TRUE(transforms::runPassPipeline(m.get(), "canonicalize,cse", diag))
      << diag.str();
  std::string text = printOp(m.op());
  EXPECT_NE(text.find("value = 42"), std::string::npos) << text;
  EXPECT_EQ(text.find("addi"), std::string::npos) << text;
}

TEST(PassRegistryTest, UnknownPassReportsError) {
  OwnedModule m = parseOk("module {\n}");
  DiagnosticEngine diag;
  EXPECT_FALSE(transforms::runPassPipeline(m.get(), "cse,bogus", diag));
  EXPECT_NE(diag.str().find("unknown pass 'bogus'"), std::string::npos);
}

TEST(PassRegistryTest, EmptyPipelineIsNoOp) {
  OwnedModule m = parseOk("module {\n}");
  DiagnosticEngine diag;
  EXPECT_TRUE(transforms::runPassPipeline(m.get(), "", diag));
}
