// Integration tests: every Rodinia benchmark compiled through every
// pipeline variant must reproduce the lockstep SIMT emulator's output,
// and the OpenMP reference source must compile and run.
#include "rodinia/rodinia.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace paralift;
using namespace paralift::rodinia;
using paralift::driver::CompileResult;
using paralift::driver::Executor;
using paralift::transforms::PipelineOptions;

namespace {

struct RunResult {
  std::vector<float> f;
  std::vector<int32_t> i;
};

RunResult runCuda(const Benchmark &b, const PipelineOptions *opts,
                  unsigned threads) {
  DiagnosticEngine diag;
  CompileResult cc = opts ? driver::compile(b.cudaSource, *opts, diag)
                          : driver::compileForSimt(b.cudaSource, diag);
  EXPECT_TRUE(cc.ok) << b.id << ": " << diag.str();
  if (!cc.ok)
    return {};
  Workload w = b.makeWorkload(1);
  Executor exec(cc.module.get(), threads);
  exec.run("run", w.args());
  return {w.floatState(), w.intState()};
}

RunResult runOpenmp(const Benchmark &b, unsigned threads) {
  DiagnosticEngine diag;
  PipelineOptions opts;
  CompileResult cc = driver::compile(b.openmpSource, opts, diag);
  EXPECT_TRUE(cc.ok) << b.id << " (openmp): " << diag.str();
  if (!cc.ok)
    return {};
  Workload w = b.makeWorkload(1);
  Executor exec(cc.module.get(), threads);
  exec.run("run", w.args());
  return {w.floatState(), w.intState()};
}

void expectClose(const RunResult &a, const RunResult &b,
                 const std::string &what) {
  ASSERT_EQ(a.f.size(), b.f.size()) << what;
  ASSERT_EQ(a.i.size(), b.i.size()) << what;
  for (size_t k = 0; k < a.f.size(); ++k)
    ASSERT_NEAR(a.f[k], b.f[k], 2e-3 + 2e-3 * std::fabs(a.f[k]))
        << what << " float buffer index " << k;
  for (size_t k = 0; k < a.i.size(); ++k)
    ASSERT_EQ(a.i[k], b.i[k]) << what << " int buffer index " << k;
}

class RodiniaTest : public ::testing::TestWithParam<const Benchmark *> {};

} // namespace

TEST_P(RodiniaTest, FullPipelineMatchesSimt) {
  const Benchmark &b = *GetParam();
  RunResult simt = runCuda(b, nullptr, 1);
  PipelineOptions opts;
  RunResult opt = runCuda(b, &opts, 2);
  expectClose(simt, opt, b.id + " full");
}

TEST_P(RodiniaTest, OptDisabledMatchesSimt) {
  const Benchmark &b = *GetParam();
  RunResult simt = runCuda(b, nullptr, 1);
  PipelineOptions opts = PipelineOptions::optDisabled();
  RunResult disabled = runCuda(b, &opts, 2);
  expectClose(simt, disabled, b.id + " disabled");
}

TEST_P(RodiniaTest, InnerParMatchesSimt) {
  const Benchmark &b = *GetParam();
  RunResult simt = runCuda(b, nullptr, 1);
  PipelineOptions opts;
  opts.innerSerialize = false;
  RunResult innerPar = runCuda(b, &opts, 2);
  expectClose(simt, innerPar, b.id + " innerpar");
}

TEST_P(RodiniaTest, McudaModeMatchesSimt) {
  const Benchmark &b = *GetParam();
  RunResult simt = runCuda(b, nullptr, 1);
  PipelineOptions opts = PipelineOptions::mcuda();
  RunResult mcuda = runCuda(b, &opts, 2);
  expectClose(simt, mcuda, b.id + " mcuda");
}

TEST_P(RodiniaTest, OpenmpReferenceRuns) {
  const Benchmark &b = *GetParam();
  if (!b.openmpSource)
    GTEST_SKIP() << "no OpenMP reference";
  RunResult r = runOpenmp(b, 2);
  // Smoke check: outputs must be finite.
  for (float v : r.f)
    ASSERT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(
    Suite, RodiniaTest, ::testing::ValuesIn([] {
      std::vector<const Benchmark *> ptrs;
      for (const auto &b : suite())
        ptrs.push_back(&b);
      return ptrs;
    }()),
    [](const ::testing::TestParamInfo<const Benchmark *> &info) {
      return info.param->id;
    });

TEST(RodiniaSuiteTest, SuiteIsComplete) {
  EXPECT_GE(suite().size(), 14u);
  int barriers = 0;
  for (const auto &b : suite())
    barriers += b.hasBarrier ? 1 : 0;
  EXPECT_GE(barriers, 8) << "most benchmarks should exercise barriers";
  EXPECT_NE(find("backprop_layerforward"), nullptr);
  EXPECT_EQ(find("nonexistent"), nullptr);
}
